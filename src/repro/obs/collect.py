"""Merge per-process span streams: the ``repro trace-collect`` verb.

Input: a trace directory of ``spans-*.jsonl`` files, one per traced process
(see :mod:`repro.obs.tracer`).  The collector:

1. reads each file's ``process`` header and re-bases that process's
   monotonic timestamps onto absolute time (``started_unix + (t -
   started_mono)``), putting every process on one axis;
2. groups spans by trace id and validates chain integrity (parents resolve,
   forwarded gateway requests reach a ``server.request``, executed misses
   reach ``server.execute`` and — on the pool backend — ``worker.execute``);
3. emits one Perfetto-loadable Chrome trace reusing the conventions of
   :mod:`repro.machine.chrometrace` (process/thread name metadata, "X"
   duration slices, instant events), with one thread lane per trace so
   concurrent requests never falsely nest.  A worker span carrying machine
   ``phases`` rows (the CostTree link) gets nested sub-slices scaled by
   inclusive energy — the serving trace bottoms out in model phases;
4. prints a per-stage latency breakdown (p50/p95 per span name, plus the
   derived gateway→server network component) so tail latency decomposes
   instead of just being measured.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ProcessLog",
    "aligned_events",
    "aligned_spans",
    "chrome_trace_doc",
    "group_traces",
    "load_trace_dir",
    "quantile",
    "stage_breakdown",
    "trace_collect_main",
    "validate_traces",
]


@dataclass
class ProcessLog:
    """One process's parsed span stream, plus its clock-alignment header."""

    path: str
    service: str
    pid: int
    started_unix: float
    started_mono: float
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    truncated: bool = False
    corrupt: int = 0

    @property
    def offset(self) -> float:
        """Add to a monotonic timestamp to get absolute (unix) time."""
        return self.started_unix - self.started_mono


def read_sink_file(path: str | Path) -> ProcessLog | None:
    """Parse one ``spans-*.jsonl`` file; ``None`` without a process header."""
    header = None
    spans: list[dict] = []
    events: list[dict] = []
    truncated = False
    corrupt = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            kind = record.get("kind")
            if kind == "process" and header is None:
                header = record
            elif kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            elif kind == "truncated":
                truncated = True
    if header is None:
        return None
    return ProcessLog(
        path=str(path),
        service=str(header.get("service", "")),
        pid=int(header.get("pid", 0)),
        started_unix=float(header.get("started_unix", 0.0)),
        started_mono=float(header.get("started_mono", 0.0)),
        spans=spans,
        events=events,
        truncated=truncated,
        corrupt=corrupt,
    )


def load_trace_dir(trace_dir: str | Path) -> list[ProcessLog]:
    """All process logs under ``trace_dir``, sorted by (service, pid)."""
    root = Path(trace_dir)
    logs = []
    for path in sorted(root.glob("spans-*.jsonl")):
        plog = read_sink_file(path)
        if plog is not None:
            logs.append(plog)
    if not logs:
        raise FileNotFoundError(f"no spans-*.jsonl files with process headers in {root}")
    logs.sort(key=lambda p: (p.service, p.pid))
    return logs


def aligned_spans(logs: list[ProcessLog]) -> list[dict]:
    """Every span on the absolute time axis, sorted by start.

    Each returned dict is the span record plus ``service``, ``pid``,
    ``start_u`` and ``end_u`` (absolute seconds)."""
    out = []
    for plog in logs:
        offset = plog.offset
        for record in plog.spans:
            merged = dict(record)
            merged["service"] = plog.service
            merged["pid"] = plog.pid
            merged["start_u"] = float(record.get("start", 0.0)) + offset
            merged["end_u"] = float(record.get("end", 0.0)) + offset
            out.append(merged)
    out.sort(key=lambda r: r["start_u"])
    return out


def aligned_events(logs: list[ProcessLog]) -> list[dict]:
    """Every typed event on the absolute time axis, sorted by time."""
    out = []
    for plog in logs:
        offset = plog.offset
        for record in plog.events:
            merged = dict(record)
            merged["service"] = plog.service
            merged["pid"] = plog.pid
            merged["t_u"] = float(record.get("t", 0.0)) + offset
            out.append(merged)
    out.sort(key=lambda r: r["t_u"])
    return out


def group_traces(spans: list[dict]) -> dict[str, list[dict]]:
    """Spans grouped by trace id (spans without one are skipped)."""
    traces: dict[str, list[dict]] = {}
    for span in spans:
        tid = span.get("trace")
        if tid:
            traces.setdefault(tid, []).append(span)
    return traces


def quantile(values: list[float], q: float) -> float:
    """Linear-interpolated quantile of a sample (0 for an empty one)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def stage_breakdown(spans: list[dict]) -> list[dict]:
    """Per-stage latency rows: count / mean / p50 / p95 / max, in ms.

    Stages are span names, plus a derived ``network (gw->server)`` stage:
    for each ok ``gateway.attempt`` whose child ``server.request`` is in the
    trace, the attempt duration minus the server duration is the wire +
    connect + serialization cost between the tiers."""
    samples: dict[str, list[float]] = {}
    by_span_id: dict[str, dict] = {}
    for span in spans:
        dur_ms = max(0.0, (span["end_u"] - span["start_u"]) * 1000.0)
        samples.setdefault(span["name"], []).append(dur_ms)
        sid = span.get("span")
        if sid:
            by_span_id[sid] = span
    for span in spans:
        if span["name"] != "server.request":
            continue
        parent = by_span_id.get(span.get("parent") or "")
        if parent is None or parent["name"] != "gateway.attempt":
            continue
        attempt_ms = max(0.0, (parent["end_u"] - parent["start_u"]) * 1000.0)
        server_ms = max(0.0, (span["end_u"] - span["start_u"]) * 1000.0)
        samples.setdefault("network (gw->server)", []).append(max(0.0, attempt_ms - server_ms))
    rows = []
    for name in sorted(samples):
        values = samples[name]
        rows.append(
            {
                "stage": name,
                "count": len(values),
                "mean_ms": round(sum(values) / len(values), 3),
                "p50_ms": round(quantile(values, 0.50), 3),
                "p95_ms": round(quantile(values, 0.95), 3),
                "max_ms": round(max(values), 3),
            }
        )
    return rows


def validate_traces(traces: dict[str, list[dict]], *, require_worker: bool = True) -> list[str]:
    """Chain-integrity failures across all traces (empty = valid).

    * every span's parent, when set, resolves within its trace;
    * a ``forwarded`` gateway request has attempt spans, and its ok attempt
      reaches a ``server.request`` span;
    * an executed (non-cached, leader) server request has a
      ``server.execute`` child, and — with ``require_worker`` and the pool
      backend — the execute span has a ``worker.execute`` child.
    """
    failures = []
    for tid, spans in sorted(traces.items()):
        short = tid[:8]
        ids = {s["span"] for s in spans if s.get("span")}
        for span in spans:
            parent = span.get("parent")
            if parent and parent not in ids:
                failures.append(f"{short}: {span['name']} has unresolved parent {parent[:8]}")
        attempts = [s for s in spans if s["name"] == "gateway.attempt"]
        servers = [s for s in spans if s["name"] == "server.request"]
        for gw in (s for s in spans if s["name"] == "gateway.request"):
            if gw.get("attrs", {}).get("outcome") != "forwarded":
                continue
            mine = [a for a in attempts if a.get("parent") == gw["span"]]
            if not mine:
                failures.append(f"{short}: forwarded gateway.request has no attempt spans")
                continue
            ok_ids = {a["span"] for a in mine if a["status"] == "ok"}
            if ok_ids and not any(s.get("parent") in ok_ids for s in servers):
                failures.append(f"{short}: ok attempt has no server.request child")
        for srv in servers:
            attrs = srv.get("attrs", {})
            if attrs.get("status_code") != 200 or attrs.get("cached") or not attrs.get("leader"):
                continue
            execs = [
                s for s in spans if s["name"] == "server.execute" and s.get("parent") == srv["span"]
            ]
            if not execs:
                failures.append(f"{short}: executed server.request has no server.execute child")
                continue
            if require_worker:
                for ex in execs:
                    if ex.get("attrs", {}).get("backend") != "pool" or ex["status"] != "ok":
                        continue
                    kids = [
                        s
                        for s in spans
                        if s["name"] == "worker.execute" and s.get("parent") == ex["span"]
                    ]
                    if not kids:
                        failures.append(f"{short}: pool server.execute has no worker.execute span")
    return failures


# -- Chrome trace export --------------------------------------------------


def _phase_slices(rows: list[dict], pid: int, tid: int, ts_us: float, dur_us: float) -> list[dict]:
    """Nested sub-slices for a worker span's CostTree ``phases`` rows.

    The flattened rows arrive pre-order (root first, ``level`` = depth).
    Real per-phase wall time is not recorded — the model counts energy — so
    children split their parent's slice proportionally to inclusive energy,
    which is exactly the attribution the paper's cost trees make."""
    if not rows or dur_us <= 0:
        return []

    def child_indexes(i: int) -> list[int]:
        level = rows[i].get("level", 0)
        out = []
        j = i + 1
        while j < len(rows) and rows[j].get("level", 0) > level:
            if rows[j].get("level", 0) == level + 1:
                out.append(j)
            j += 1
        return out

    events: list[dict] = []

    def emit(i: int, start_us: float, span_us: float) -> None:
        row = rows[i]
        path = str(row.get("path", "?"))
        name = path.rsplit("/", 1)[-1] or path
        events.append(
            {
                "name": f"phase:{name}",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round(start_us, 3),
                "dur": round(span_us, 3),
                "args": {
                    "path": path,
                    "inclusive_energy": row.get("inclusive_energy"),
                    "inclusive_messages": row.get("inclusive_messages"),
                    "max_depth": row.get("max_depth"),
                },
            }
        )
        kids = child_indexes(i)
        parent_energy = float(row.get("inclusive_energy") or 0.0)
        if not kids or parent_energy <= 0:
            return
        cursor = start_us
        for j in kids:
            frac = max(0.0, float(rows[j].get("inclusive_energy") or 0.0)) / parent_energy
            child_us = span_us * min(1.0, frac)
            emit(j, cursor, child_us)
            cursor += child_us

    # the root row duplicates the worker span's extent; inset it slightly so
    # Chrome nests it under the worker slice instead of tying with it
    emit(0, ts_us + dur_us * 0.001, dur_us * 0.998)
    return events


def chrome_trace_doc(logs: list[ProcessLog], *, label: str = "repro distributed trace") -> dict:
    """One Perfetto-loadable Chrome trace over every process's spans."""
    spans = aligned_spans(logs)
    events_al = aligned_events(logs)
    t0 = min([s["start_u"] for s in spans] + [e["t_u"] for e in events_al], default=0.0)
    trace_events: list[dict] = []
    pid_of: dict[tuple[str, int], int] = {}
    for i, plog in enumerate(logs, start=1):
        pid_of[(plog.service, plog.pid)] = i
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": i,
                "args": {"name": f"{plog.service} (pid {plog.pid})"},
            }
        )
    # one thread lane per (process, trace): concurrent requests in one
    # process must not stack into a false nesting on a shared lane
    lanes: dict[tuple[int, str], int] = {}
    lane_count: dict[int, int] = {}

    def lane_for(pid: int, trace_id: str) -> int:
        key = (pid, trace_id or "-")
        if key not in lanes:
            lane_count[pid] = lane_count.get(pid, 0) + 1
            lanes[key] = lane_count[pid]
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lanes[key],
                    "args": {"name": f"trace {trace_id[:8]}" if trace_id else "events"},
                }
            )
        return lanes[key]

    for span in spans:
        pid = pid_of[(span["service"], span["pid"])]
        tid = lane_for(pid, span.get("trace") or "")
        ts_us = (span["start_u"] - t0) * 1e6
        dur_us = max(0.0, (span["end_u"] - span["start_u"]) * 1e6)
        attrs = span.get("attrs", {})
        args = {k: v for k, v in attrs.items() if k != "phases"}
        args.update(trace=span.get("trace"), span=span.get("span"), status=span.get("status"))
        trace_events.append(
            {
                "name": span["name"],
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round(ts_us, 3),
                "dur": round(dur_us, 3),
                "args": args,
            }
        )
        phases = attrs.get("phases")
        if isinstance(phases, list) and phases:
            trace_events.extend(_phase_slices(phases, pid, tid, ts_us, dur_us))
    for ev in events_al:
        pid = pid_of[(ev["service"], ev["pid"])]
        tid = lane_for(pid, ev.get("trace") or "")
        trace_events.append(
            {
                "name": f"event:{ev.get('type', '?')}",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": round((ev["t_u"] - t0) * 1e6, 3),
                "args": dict(ev.get("attrs", {})),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "processes": len(logs),
            "spans": len(spans),
            "events": len(events_al),
        },
    }


def collect_summary(logs: list[ProcessLog], *, require_worker: bool = True) -> dict:
    """The whole merge: processes, traces, validation, stage breakdown."""
    spans = aligned_spans(logs)
    events = aligned_events(logs)
    traces = group_traces(spans)
    failures = validate_traces(traces, require_worker=require_worker)
    for plog in logs:
        if plog.truncated:
            failures.append(f"{plog.service} (pid {plog.pid}): span sink truncated")
        if plog.corrupt:
            failures.append(f"{plog.service} (pid {plog.pid}): {plog.corrupt} corrupt line(s)")
    return {
        "processes": [
            {
                "service": p.service,
                "pid": p.pid,
                "spans": len(p.spans),
                "events": len(p.events),
                "truncated": p.truncated,
            }
            for p in logs
        ],
        "spans": len(spans),
        "events": len(events),
        "traces": len(traces),
        "stages": stage_breakdown(spans),
        "failures": failures,
    }


# -- CLI ------------------------------------------------------------------


def add_trace_collect_args(parser) -> None:
    parser.add_argument("--dir", required=True, help="trace directory of spans-*.jsonl files")
    parser.add_argument("--out", default="", help="write the merged Chrome trace JSON here")
    parser.add_argument("--json", default="", help="write the merge summary JSON here")
    parser.add_argument(
        "--require-complete",
        action="store_true",
        help="exit non-zero unless every trace chains gateway -> server -> worker",
    )
    parser.add_argument(
        "--no-require-worker",
        action="store_true",
        help="with --require-complete, accept chains that stop at server.execute "
        "(inline executors have no worker process)",
    )
    parser.add_argument("--min-traces", type=int, default=0, help="fail below this many traces")


def trace_collect_main(args) -> int:
    """Entry point for the ``repro trace-collect`` CLI verb."""
    try:
        logs = load_trace_dir(args.dir)
    except FileNotFoundError as exc:
        print(f"trace-collect: {exc}")
        return 2
    summary = collect_summary(logs, require_worker=not args.no_require_worker)
    for proc in summary["processes"]:
        flag = " TRUNCATED" if proc["truncated"] else ""
        print(
            f"trace-collect: {proc['service']} (pid {proc['pid']}): "
            f"{proc['spans']} span(s), {proc['events']} event(s){flag}"
        )
    print(
        f"trace-collect: {summary['traces']} trace(s), {summary['spans']} span(s), "
        f"{summary['events']} event(s) merged"
    )
    if summary["stages"]:
        width = max(len(r["stage"]) for r in summary["stages"])
        print(f"{'stage'.ljust(width)}  {'count':>6}  {'p50_ms':>9}  {'p95_ms':>9}  {'max_ms':>9}")
        for row in summary["stages"]:
            print(
                f"{row['stage'].ljust(width)}  {row['count']:>6}  "
                f"{row['p50_ms']:>9.3f}  {row['p95_ms']:>9.3f}  {row['max_ms']:>9.3f}"
            )
    if args.out:
        doc = chrome_trace_doc(logs)
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(doc))
        print(
            f"trace-collect: wrote {len(doc['traceEvents'])} trace event(s) to {args.out} "
            "(load in ui.perfetto.dev or chrome://tracing)"
        )
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
        print(f"trace-collect: summary -> {args.json}")
    failed = False
    if args.min_traces and summary["traces"] < args.min_traces:
        print(f"trace-collect: FAIL: {summary['traces']} trace(s) < required {args.min_traces}")
        failed = True
    if args.require_complete and summary["failures"]:
        for failure in summary["failures"]:
            print(f"trace-collect: FAIL: {failure}")
        failed = True
    return 1 if failed else 0
