"""repro.obs — distributed tracing and structured events for the serving tier.

The single-machine side of the repo already attributes every joule and every
hop (``CostTree`` phase spans, the spatial profiler's witnesses).  This
package extends that discipline across *processes*: one request minted by the
load generator carries a W3C-traceparent-style context (the ``X-Repro-Trace``
header) through the fleet gateway, a shard server, and a pool worker, and
every hop records spans into a bounded per-process JSONL sink.  The worker's
span carries the machine's root counters and flattened ``CostTree`` rows, so
model energy/depth attach to the serving trace end to end.

Three modules:

* :mod:`repro.obs.context` — the trace context: header format, parsing,
  deterministic (seedable) trace/span id derivation;
* :mod:`repro.obs.tracer` — per-process recording: ``Tracer`` (spans +
  typed events, seeded ids, injectable clock), the bounded ``SpanSink``
  whose first record is a (unix, monotonic) clock pair for merge-time
  alignment, and the zero-cost ``NULL_TRACER`` disabled path;
* :mod:`repro.obs.collect` — ``repro trace-collect``: merge per-process
  span files, align clocks, group traces, validate chains, export one
  Perfetto-loadable Chrome trace, and print a per-stage latency breakdown.

Tracing is strictly opt-in: without ``REPRO_TRACE_DIR`` (or an explicit
tracer), every instrumentation point hits ``NULL_TRACER.enabled`` — a class
attribute read — and does nothing else.  No metrics counter is ever touched
by tracing code, so ``/metrics`` for a seeded load is byte-identical with
tracing on or off.
"""

from .context import TRACE_HEADER, TraceContext, deterministic_span_id, deterministic_trace_id
from .tracer import (
    ENV_TRACE_DIR,
    NULL_TRACER,
    NullTracer,
    SpanSink,
    Tracer,
    make_tracer,
    tracer_from_env,
)

__all__ = [
    "ENV_TRACE_DIR",
    "NULL_TRACER",
    "TRACE_HEADER",
    "NullTracer",
    "SpanSink",
    "TraceContext",
    "Tracer",
    "deterministic_span_id",
    "deterministic_trace_id",
    "make_tracer",
    "tracer_from_env",
]
