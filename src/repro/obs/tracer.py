"""Per-process span and event recording with a bounded JSONL sink.

Every traced process (loadgen, gateway, shard server, pool worker) owns one
:class:`Tracer` writing to its own ``spans-<service>-<pid>.jsonl`` file under
a shared trace directory.  The file's first record is a ``process`` header
carrying the service name and a (unix, monotonic) clock pair read at sink
creation; span timestamps are monotonic, and the collector reconstructs
absolute time as ``started_unix + (t_mono - started_mono)`` per process —
the same offset-alignment trick the machine's Chrome-trace export uses for
phase spans.

Design constraints, in order:

* **Zero-cost disabled path.**  Without ``REPRO_TRACE_DIR`` the module-level
  :data:`NULL_TRACER` is returned everywhere; instrumentation points guard on
  ``tracer.enabled`` (a class attribute) and allocate nothing.  Tracing code
  never touches a metrics counter, so ``/metrics`` is byte-identical with
  tracing on or off.
* **Bounded.**  The sink refuses writes past ``max_records`` (drops are
  counted and a single ``truncated`` marker record is appended once), so a
  runaway load can never grow a span file without bound.
* **Deterministic under test.**  Span/trace ids come from a seeded
  ``random.Random`` and the clock is injectable, so a test can fix both and
  get byte-stable span records.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from .context import TraceContext

__all__ = [
    "DEFAULT_MAX_RECORDS",
    "ENV_TRACE_DIR",
    "ENV_TRACE_MAX_RECORDS",
    "ENV_TRACE_SEED",
    "NULL_TRACER",
    "ActiveSpan",
    "NullTracer",
    "SpanSink",
    "Tracer",
    "WallClock",
    "make_tracer",
    "tracer_from_env",
]

#: opt-in switch: a directory path enables tracing for the process and (via
#: fork/exec inheritance) its pool workers and spawned shard replicas
ENV_TRACE_DIR = "REPRO_TRACE_DIR"
ENV_TRACE_SEED = "REPRO_TRACE_SEED"
ENV_TRACE_MAX_RECORDS = "REPRO_TRACE_MAX_RECORDS"

DEFAULT_MAX_RECORDS = 100_000


class WallClock:
    """Real time: the unix epoch plus the monotonic axis spans live on."""

    def unix(self) -> float:
        return time.time()

    def mono(self) -> float:
        return time.monotonic()


class SpanSink:
    """Bounded append-only JSONL writer for one process's span stream."""

    def __init__(self, path: str | Path, header: dict, max_records: int = DEFAULT_MAX_RECORDS):
        self.path = Path(path)
        self.header = dict(header)
        self.max_records = max(1, int(max_records))
        self.written = 0
        self.dropped = 0
        self._truncated = False
        self._fh = None
        self._lock = threading.Lock()

    def write(self, record: dict) -> bool:
        """Append one record; ``False`` (and a drop count) past the bound."""
        with self._lock:
            if self.written >= self.max_records:
                self.dropped += 1
                if not self._truncated:
                    # one marker past the bound so the collector can tell a
                    # truncated stream from a complete one
                    self._truncated = True
                    self._emit({"kind": "truncated", "after": self.max_records})
                return False
            self._emit(record)
            self.written += 1
            return True

    def _emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(self.header, separators=(",", ":")) + "\n")
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class ActiveSpan:
    """One open span; ``end()`` is idempotent and records it to the sink."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_mono",
        "end_mono",
        "attrs",
        "status",
        "_done",
    )

    def __init__(self, tracer, name, trace_id, span_id, parent_id, start_mono, attrs):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_mono = start_mono
        self.end_mono = 0.0
        self.attrs = attrs
        self.status = "ok"
        self._done = False

    @property
    def ctx(self) -> TraceContext:
        """The context this span propagates downstream."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_ms(self) -> float:
        return max(0.0, (self.end_mono - self.start_mono) * 1000.0)

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def end(self, status: str | None = None) -> None:
        if self._done:
            return
        self._done = True
        if status is not None:
            self.status = status
        self.tracer._record_span(self)


class Tracer:
    """Span/event recorder for one process ("service")."""

    enabled = True

    def __init__(
        self,
        service: str,
        sink: SpanSink,
        *,
        seed: int | None = None,
        clock: WallClock | None = None,
    ) -> None:
        self.service = str(service)
        self.sink = sink
        self.clock = clock if clock is not None else WallClock()
        self._rng = random.Random(seed)

    # -- ids --------------------------------------------------------------
    def new_trace_id(self) -> str:
        return f"{self._rng.getrandbits(128):032x}"

    def new_span_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    # -- spans ------------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        parent: TraceContext | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        attrs: dict | None = None,
    ) -> ActiveSpan:
        """Open a span.  ``parent`` links into an existing trace; without
        one, ``trace_id`` (or a fresh random id) starts a new trace."""
        if parent is not None:
            tid, parent_id = parent.trace_id, parent.span_id
        else:
            tid, parent_id = trace_id or self.new_trace_id(), None
        return ActiveSpan(
            self,
            name,
            tid,
            span_id or self.new_span_id(),
            parent_id,
            self.clock.mono(),
            dict(attrs) if attrs else {},
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: TraceContext | None = None,
        trace_id: str | None = None,
        attrs: dict | None = None,
    ):
        active = self.start_span(name, parent=parent, trace_id=trace_id, attrs=attrs)
        try:
            yield active
        except BaseException as exc:
            active.end("cancelled" if isinstance(exc, asyncio.CancelledError) else "error")
            raise
        active.end()

    def _record_span(self, span: ActiveSpan) -> None:
        span.end_mono = self.clock.mono()
        record = {
            "kind": "span",
            "name": span.name,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "start": round(span.start_mono, 6),
            "end": round(span.end_mono, 6),
            "status": span.status,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self.sink.write(record)

    # -- typed events ------------------------------------------------------
    def event(self, etype: str, *, parent: TraceContext | None = None, attrs: dict | None = None):
        """Record one point-in-time structured event (the typed replacement
        for banner prints: breaker transitions, health flaps, drain...)."""
        record = {"kind": "event", "type": etype, "t": round(self.clock.mono(), 6)}
        if parent is not None:
            record["trace"] = parent.trace_id
            record["parent"] = parent.span_id
        if attrs:
            record["attrs"] = dict(attrs)
        self.sink.write(record)

    def close(self) -> None:
        self.sink.close()


class _NullSpan:
    """The span of the disabled path: every method is a no-op."""

    __slots__ = ()
    ctx = None
    trace_id = ""
    span_id = ""
    status = "ok"
    duration_ms = 0.0

    def set(self, **attrs) -> None:
        pass

    def end(self, status: str | None = None) -> None:
        pass


class NullTracer:
    """The disabled path: ``enabled`` is False and everything is a no-op."""

    enabled = False
    service = ""
    sink = None

    def new_trace_id(self) -> str:
        return ""

    def new_span_id(self) -> str:
        return ""

    def start_span(self, name, **kwargs) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name, **kwargs):
        yield NULL_SPAN

    def event(self, etype, **kwargs) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_SAFE_NAME_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def make_tracer(
    service: str,
    trace_dir: str | Path,
    *,
    seed: int | None = None,
    clock: WallClock | None = None,
    max_records: int | None = None,
) -> Tracer:
    """A real tracer writing ``spans-<service>-<pid>.jsonl`` under ``trace_dir``."""
    clock = clock if clock is not None else WallClock()
    pid = os.getpid()
    safe = _SAFE_NAME_RE.sub("_", str(service)) or "proc"
    header = {
        "kind": "process",
        "format": 1,
        "service": str(service),
        "pid": pid,
        "started_unix": clock.unix(),
        "started_mono": clock.mono(),
    }
    if max_records is None:
        try:
            max_records = int(os.environ.get(ENV_TRACE_MAX_RECORDS, "") or DEFAULT_MAX_RECORDS)
        except ValueError:
            max_records = DEFAULT_MAX_RECORDS
    sink = SpanSink(Path(trace_dir) / f"spans-{safe}-{pid}.jsonl", header, max_records=max_records)
    return Tracer(str(service), sink, seed=seed, clock=clock)


def tracer_from_env(service: str, *, seed: int | None = None) -> Tracer | NullTracer:
    """The process tracer: real when ``REPRO_TRACE_DIR`` is set, else the
    shared no-op.  Pool workers and spawned shard replicas inherit the
    environment, which is how one flag traces a whole fleet."""
    trace_dir = os.environ.get(ENV_TRACE_DIR, "")
    if not trace_dir:
        return NULL_TRACER
    if seed is None:
        env_seed = os.environ.get(ENV_TRACE_SEED, "")
        if env_seed:
            # mix in the process identity: two processes sharing the env seed
            # must not mint identical span-id sequences within one trace
            seed = hash((env_seed, str(service), os.getpid())) & 0x7FFFFFFF
    return make_tracer(service, trace_dir, seed=seed)
