"""Applications composed from the public primitives: order statistics
(Section VI motivation) and graph kernels (introduction's motivation)."""

from .graph import (
    GraphConvergenceError,
    PageRankResult,
    bfs_distances,
    connected_components,
    degree_table,
    pagerank,
)
from .statistics import (
    interquartile_range,
    median,
    median_absolute_deviation,
    quantile,
    top_k,
    trimmed_mean,
)

__all__ = [
    "GraphConvergenceError",
    "PageRankResult",
    "bfs_distances",
    "connected_components",
    "degree_table",
    "pagerank",
    "interquartile_range",
    "median",
    "median_absolute_deviation",
    "quantile",
    "top_k",
    "trimmed_mean",
]
