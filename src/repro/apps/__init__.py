"""Applications composed from the public primitives: order statistics
(Section VI motivation) and graph kernels (introduction's motivation)."""

from .graph import bfs_distances, connected_components, degree_table
from .statistics import (
    interquartile_range,
    median,
    median_absolute_deviation,
    quantile,
    top_k,
    trimmed_mean,
)

__all__ = [
    "bfs_distances",
    "connected_components",
    "degree_table",
    "interquartile_range",
    "median",
    "median_absolute_deviation",
    "quantile",
    "top_k",
    "trimmed_mean",
]
