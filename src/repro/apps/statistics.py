"""Order statistics on the spatial machine — the Section VI motivation.

The paper motivates rank selection with nonparametric statistics.  These
helpers compose the Section VI primitive into the estimators a statistics
workload actually needs, all at Θ(n) energy and polylog depth per query:

* :func:`quantile` — the q-quantile (nearest-rank definition);
* :func:`median` / :func:`interquartile_range`;
* :func:`trimmed_mean` — select the two trim cut points, then one masked
  all-reduce for the sum and count of the surviving elements;
* :func:`median_absolute_deviation` — two chained selections (median of the
  values, then median of |x - median|, with the deviations computed locally
  after a broadcast of the first median).
"""

from __future__ import annotations

import numpy as np

from ..core.collectives import all_reduce, broadcast
from ..core.ops import ADD
from ..core.selection import rank_select
from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray

__all__ = [
    "quantile",
    "median",
    "interquartile_range",
    "trimmed_mean",
    "median_absolute_deviation",
    "top_k",
]


def _rank_for(q: float, n: int) -> int:
    """Nearest-rank definition: smallest k with k/n >= q."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    return max(1, int(np.ceil(q * n)))


def quantile(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    q: float,
    rng: np.random.Generator,
) -> float:
    """The q-quantile of ``ta`` (Z-order placed) via rank selection."""
    n = len(ta)
    res = rank_select(machine, ta, region, _rank_for(q, n), rng)
    return res.value


def median(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    rng: np.random.Generator,
) -> float:
    return quantile(machine, ta, region, 0.5, rng)


def interquartile_range(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    rng: np.random.Generator,
) -> float:
    """Q3 - Q1, two independent selections."""
    q1 = quantile(machine, ta, region, 0.25, rng)
    q3 = quantile(machine, ta, region, 0.75, rng)
    return q3 - q1


def trimmed_mean(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    trim: float,
    rng: np.random.Generator,
) -> float:
    """Mean of the values with the lowest/highest ``trim`` fraction removed.

    Two selections find the cut values; a broadcast ships them to every cell;
    one all-reduce accumulates (sum, count) of the kept elements.  Elements
    tied with a cut value are kept (value-based trimming).
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    n = len(ta)
    lo_k = max(1, int(np.floor(trim * n)) + 1)
    hi_k = min(n, n - int(np.floor(trim * n)))
    lo = rank_select(machine, ta, region, lo_k, rng).value
    hi = rank_select(machine, ta, region, hi_k, rng).value

    cuts = machine.place(np.array([[lo, hi]]), [region.row], [region.col])
    blanket = broadcast(machine, cuts, region)
    ta = ta.depending_on(blanket[region.rowmajor_index(ta.rows, ta.cols)])

    vals = ta.payload.reshape(n, -1)[:, 0]
    keep = (vals >= lo) & (vals <= hi)
    acc = ta.with_payload(np.stack([np.where(keep, vals, 0.0), keep.astype(np.float64)], axis=1))
    totals = all_reduce(machine, acc, region, ADD)
    total, count = totals.payload[0]
    if count == 0:
        raise ValueError("trim removed every element")
    return float(total / count)


def median_absolute_deviation(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    rng: np.random.Generator,
) -> float:
    """MAD = median(|x - median(x)|): two chained selections."""
    n = len(ta)
    med = median(machine, ta, region, rng)
    center = machine.place(np.array([med]), [region.row], [region.col])
    blanket = broadcast(machine, center, region)
    ta = ta.depending_on(blanket[region.rowmajor_index(ta.rows, ta.cols)])
    vals = ta.payload.reshape(n, -1)[:, 0]
    deviations = ta.with_payload(np.abs(vals - med))
    return median(machine, deviations, region, rng)


def top_k(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The ``k`` largest values, descending — selection + gather, no sort.

    One rank selection finds the cut value (Θ(n) energy), a broadcast ships
    it, and :func:`repro.core.gather.gather_masked` compacts the qualifying
    elements into a staging square; ties at the cut are resolved by
    Z-position so exactly ``k`` elements move.  Only the final
    ``O(k log k)``-size ordering happens off the critical Θ(n) path (here:
    locally, the gathered set being a compact O(k) region).
    """
    from ..core.gather import gather_masked
    from ..core.scan import scan

    n = len(ta)
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range 1..{n}")
    cut = rank_select(machine, ta, region, n - k + 1, rng).value
    cut_ta = machine.place(np.array([cut]), [region.row], [region.col])
    blanket = broadcast(machine, cut_ta, region)
    ta = ta.depending_on(blanket[region.rowmajor_index(ta.rows, ta.cols)])

    vals = ta.payload.reshape(n, -1)[:, 0]
    above = vals > cut
    tied = vals == cut
    # rank ties by Z-position with a scan, keep just enough of them
    tie_scan = scan(machine, ta.with_payload(tied.astype(np.float64)), region, ADD)
    need = k - int(above.sum())
    keep = above | (tied & (tie_scan.inclusive.payload <= need))
    ta = ta.depending_on(tie_scan.inclusive)
    gathered = gather_masked(machine, ta.with_payload(vals), keep, region)
    return np.sort(gathered.payload)[::-1].copy()
