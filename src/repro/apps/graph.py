"""Graph algorithms on the spatial machine — the introduction's motivation.

The paper motivates its primitives with graph workloads (SpMV "is central to
graph algorithms", GNNs).  These helpers build classic graph kernels from
the public API:

* :func:`connected_components` — min-label propagation: each round is one
  SpMV over the (MIN, select-right) semiring (``y_i = min(x_i, min_{j~i}
  x_j)``), so a graph with diameter D converges in <= D+1 rounds, each
  Θ(m^{3/2}) energy and polylog depth;
* :func:`bfs_distances` — breadth-first distances via (MIN, +1) semiring
  rounds from a source vertex;
* :func:`degree_table` — vertex degrees with one ADD-semiring SpMV over the
  all-ones vector.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import ADD, MIN
from ..machine.machine import SpatialMachine
from ..spmv.coo import COOMatrix
from ..spmv.spmv import spmv_spatial

__all__ = ["connected_components", "bfs_distances", "degree_table"]


def connected_components(
    machine: SpatialMachine,
    adjacency: COOMatrix,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Component labels (the minimum vertex id in each component).

    ``adjacency`` must be symmetric (an undirected graph).  Runs min-label
    propagation until a fixed point; each round is one semiring SpMV plus a
    local element-wise min with the current labels.
    """
    n = adjacency.n
    labels = np.arange(n, dtype=np.float64)
    rounds = max_rounds if max_rounds is not None else n
    for _ in range(rounds):
        y = spmv_spatial(
            machine,
            adjacency,
            labels,
            combine=MIN,
            multiply=lambda a, x: x,
        )
        new_labels = np.minimum(labels, y.payload)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels.astype(np.int64)


def bfs_distances(
    machine: SpatialMachine,
    adjacency: COOMatrix,
    source: int,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Hop distances from ``source`` (inf for unreachable vertices).

    Each round relaxes ``d_i = min(d_i, 1 + min_{j~i} d_j)`` with one
    (MIN, +1)-semiring SpMV.
    """
    n = adjacency.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    rounds = max_rounds if max_rounds is not None else n
    for _ in range(rounds):
        y = spmv_spatial(
            machine,
            adjacency,
            dist,
            combine=MIN,
            multiply=lambda a, x: x + 1.0,
        )
        new_dist = np.minimum(dist, y.payload)
        if np.array_equal(
            np.nan_to_num(new_dist, posinf=-1), np.nan_to_num(dist, posinf=-1)
        ):
            break
        dist = new_dist
    return dist


def degree_table(machine: SpatialMachine, adjacency: COOMatrix) -> np.ndarray:
    """Vertex degrees: one ADD-semiring SpMV with the all-ones vector."""
    ones = np.ones(adjacency.n)
    y = spmv_spatial(machine, adjacency, ones, combine=ADD)
    return np.rint(y.payload).astype(np.int64)
