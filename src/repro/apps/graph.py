"""Back-compat shim: the graph kernels moved to :mod:`repro.graphs`.

The original ~80-line module grew into a full workload subsystem
(generators, PageRank, per-iteration cost attribution, host oracles) —
see ``docs/GRAPHS.md``.  Existing ``repro.apps`` imports keep working and
now get the fixed convergence semantics: round caps derive from the fixed
point (with :class:`~repro.graphs.algorithms.GraphConvergenceError` when an
explicit cap is exhausted) and adjacency symmetry is validated up front.
"""

from __future__ import annotations

from ..graphs.algorithms import (
    GraphConvergenceError,
    PageRankResult,
    bfs_distances,
    connected_components,
    degree_table,
    pagerank,
)

__all__ = [
    "GraphConvergenceError",
    "PageRankResult",
    "bfs_distances",
    "connected_components",
    "degree_table",
    "pagerank",
]
