"""Tree computations via Euler tours and the energy-optimal scan
(the Section II.A connection to prior spatial tree algorithms)."""

from .euler import SpatialTree, euler_tour

__all__ = ["SpatialTree", "euler_tour"]
