"""Tree computations from the scan primitive (the Section II.A connection).

Prior Spatial Computer work (Baumann et al., "Low-depth spatial tree
algorithms") computes treefix sums over spatially laid-out trees in
Θ(n log n) energy; this paper's scan improves the path case to Θ(n).  This
module shows the general mechanism: store a tree along its **Euler tour**
(the spatially-optimized layout — tour neighbours are grid neighbours along
the Z-order curve), and every classic treefix quantity becomes one
energy-optimal scan:

* **rootfix sums** (sum over the root path): ``+v`` at a node's entry slot,
  ``-v`` at its exit slot, one prefix sum — the value at a node's entry slot
  is the sum of its ancestors including itself (requires a group, i.e.
  subtraction; ADD here);
* **node depths** — rootfix of all-ones;
* **subtree sums** (the leaffix aggregate): values at entry slots, one
  prefix sum, then ``prefix[out] - prefix[in - 1]`` read off locally.

For a path graph the tour *is* the path and rootfix degenerates to exactly
the Section IV.C scan — Θ(n) energy where the prior work's treefix pays
Θ(n log n), the improvement claimed in Section II.A.

Costs per query: one scan — Θ(n) energy, O(log n) depth, O(sqrt(n))
distance (n = tour length = 2 · #nodes).  Tour construction is a layout
decision (inputs are *placed* in tour order, like any other input format in
the paper); no routing is charged for it.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import ADD
from ..core.scan import scan
from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray

__all__ = ["SpatialTree", "euler_tour"]


def euler_tour(parents: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Entry/exit slot of every node along the DFS Euler tour.

    ``parents[v]`` is ``v``'s parent; the root points to itself.  Returns
    ``(tour_node, t_in, t_out)``: the node occupying each of the ``2n``
    slots (entry and exit), and each node's entry/exit slot index.
    """
    parents = np.asarray(parents, dtype=np.int64)
    n = len(parents)
    roots = np.nonzero(parents == np.arange(n))[0]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root, found {len(roots)}")
    root = int(roots[0])
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if v != root:
            children[parents[v]].append(v)

    tour_node = np.empty(2 * n, dtype=np.int64)
    t_in = np.empty(n, dtype=np.int64)
    t_out = np.empty(n, dtype=np.int64)
    clock = 0
    stack: list[tuple[int, bool]] = [(root, False)]
    visited = 0
    while stack:
        v, leaving = stack.pop()
        if leaving:
            tour_node[clock] = v
            t_out[v] = clock
            clock += 1
            continue
        tour_node[clock] = v
        t_in[v] = clock
        clock += 1
        visited += 1
        stack.append((v, True))
        for c in reversed(children[v]):
            stack.append((c, False))
    if visited != n:
        raise ValueError("parent array contains a cycle or disconnected node")
    return tour_node, t_in, t_out


class SpatialTree:
    """A tree stored along its Euler tour on a square subgrid.

    The ``2n`` tour slots occupy the Z-order curve of the smallest
    power-of-two square (padded slots carry zeros), so tour-adjacent slots
    are spatially adjacent on average (Observation 1) — the layout property
    the prior spatial tree work engineered explicitly.
    """

    def __init__(
        self,
        machine: SpatialMachine,
        parents: np.ndarray,
        region: Region | None = None,
    ) -> None:
        self.machine = machine
        self.parents = np.asarray(parents, dtype=np.int64)
        self.n = len(self.parents)
        self.tour_node, self.t_in, self.t_out = euler_tour(self.parents)
        slots = 2 * self.n
        side = 1
        while side * side < slots:
            side *= 2
        self.region = region or Region(0, 0, side, side)
        if self.region.size < slots:
            raise ValueError("region too small for the Euler tour")
        self.slots = self.region.size  # padded to the full square

    # ------------------------------------------------------------------
    def _tour_array(self, slot_values: np.ndarray) -> TrackedArray:
        payload = np.zeros(self.slots)
        payload[: len(slot_values)] = slot_values
        return self.machine.place_zorder(payload, self.region)

    def _scan(self, slot_values: np.ndarray) -> np.ndarray:
        with self.machine.phase("tree_scan"):
            ta = self._tour_array(slot_values)
            res = scan(self.machine, ta, self.region, ADD)
            return res.inclusive.payload

    # ------------------------------------------------------------------
    def rootfix_sum(self, values: np.ndarray) -> np.ndarray:
        """For every node, the sum of ``values`` over its root path
        (ancestors including the node itself).  One scan."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.n:
            raise ValueError("one value per node required")
        slot_vals = np.zeros(2 * self.n)
        slot_vals[self.t_in] = values
        slot_vals[self.t_out] -= values  # exit cancels entry
        prefix = self._scan(slot_vals)
        return prefix[self.t_in]

    def depths(self) -> np.ndarray:
        """Hop distance from the root (root = 0).  One scan."""
        return self.rootfix_sum(np.ones(self.n)) - 1.0

    def subtree_sum(self, values: np.ndarray) -> np.ndarray:
        """For every node, the sum of ``values`` over its subtree.  One scan
        plus a local interval difference at each node's slots."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.n:
            raise ValueError("one value per node required")
        slot_vals = np.zeros(2 * self.n)
        slot_vals[self.t_in] = values
        prefix = self._scan(slot_vals)
        before = np.where(self.t_in > 0, prefix[np.maximum(self.t_in - 1, 0)], 0.0)
        return prefix[self.t_out] - before

    def subtree_size(self) -> np.ndarray:
        """Number of nodes in each subtree.  One scan."""
        return self.subtree_sum(np.ones(self.n))
