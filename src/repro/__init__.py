"""repro — Energy-Optimal and Low-Depth Algorithmic Primitives for Spatial
Dataflow Architectures (Gianinazzi et al., IPDPS/IPPS 2025), reproduced on an
executable Spatial Computer Model simulator.

Quickstart::

    import numpy as np
    from repro import SpatialMachine, Region, scan

    machine = SpatialMachine()
    region = Region(0, 0, 16, 16)
    data = machine.place_zorder(np.arange(256.0), region)
    result = scan(machine, data, region)          # energy-optimal prefix sum
    print(machine.stats.energy)                   # Θ(n)
    print(result.inclusive.max_depth())           # O(log n)

Package map:

* :mod:`repro.machine` — the Spatial Computer Model substrate (grid, Z-order,
  cost metering, tracing, layouts);
* :mod:`repro.core` — the paper's primitives: collectives, scans, sorting,
  selection;
* :mod:`repro.pram` — a PRAM virtual machine plus its EREW/CRCW spatial
  simulations (Section VII);
* :mod:`repro.spmv` — sparse matrix-vector multiplication, direct and via
  PRAM simulation (Section VIII);
* :mod:`repro.trees` — Euler-tour treefix sums from the scan (Section II.A);
* :mod:`repro.apps` — order statistics and graph kernels built on the
  public primitives;
* :mod:`repro.analysis` — exponent fitting, tables, and workload generators
  for the reproduction harness.
"""

from .analysis import fit_power_law, make_workload
from .core import (
    ADD,
    MAX,
    MIN,
    Monoid,
    ScanResult,
    SelectionResult,
    all_reduce,
    broadcast,
    rank_select,
    reduce,
    scan,
    segmented_broadcast,
    segmented_scan,
)
from .core.sorting import (
    allpairs_sort,
    bitonic_merge,
    bitonic_sort,
    merge_sorted_2d,
    mergesort_2d,
    select_rank_two_sorted,
    select_ranks_two_sorted,
    sort_values,
)
from .machine import (
    CostReport,
    CostTree,
    MachineStats,
    Region,
    SpatialMachine,
    TrackedArray,
    zorder_coords,
    zorder_decode,
    zorder_encode,
)
from .pram import PRAMProgram, run_reference, simulate, simulate_crcw, simulate_erew
from .spmv import COOMatrix, plan_spmv, random_coo, spmv_pram_simulated, spmv_spatial
from .trees import SpatialTree

__version__ = "1.1.0"

__all__ = [
    "ADD",
    "MAX",
    "MIN",
    "Monoid",
    "ScanResult",
    "SelectionResult",
    "all_reduce",
    "broadcast",
    "rank_select",
    "reduce",
    "scan",
    "segmented_broadcast",
    "segmented_scan",
    "allpairs_sort",
    "bitonic_merge",
    "bitonic_sort",
    "merge_sorted_2d",
    "mergesort_2d",
    "select_rank_two_sorted",
    "select_ranks_two_sorted",
    "sort_values",
    "CostReport",
    "CostTree",
    "MachineStats",
    "Region",
    "SpatialMachine",
    "TrackedArray",
    "zorder_coords",
    "zorder_decode",
    "zorder_encode",
    "PRAMProgram",
    "run_reference",
    "simulate",
    "simulate_crcw",
    "simulate_erew",
    "COOMatrix",
    "random_coo",
    "spmv_pram_simulated",
    "spmv_spatial",
    "plan_spmv",
    "SpatialTree",
    "fit_power_law",
    "make_workload",
    "__version__",
]
