"""Cache-key derivation — the single source of truth for result identity.

Every consumer of the content-addressed result cache (the batch executor in
:mod:`repro.runner.executor`, the ``repro bench`` CLI, and the serving layer
in :mod:`repro.service`) must agree on how a key is derived, or identical
work stops deduplicating.  Before this module existed the pieces were
scattered: :meth:`ResultCache.key_for` held the hash recipe, the CLI carried
the suite-source discovery and the ``+profile`` salt, and the executor
re-derived keys through the cache object.  Everything now lives here, so the
service layer can compute keys without importing the executor (and its
process-pool machinery) at all.

A key is::

    sha256({"point": point.identity(), "code_version": <version>})

where the version is the content hash of every source file under
``src/repro`` plus the suite's own bench file, optionally salted with
``+profile`` (profiled points carry an extra payload and must never be
replayed into unprofiled runs, or vice versa).
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path

from .spec import PointSpec, spec_hash

__all__ = [
    "PROFILE_SALT",
    "code_version",
    "point_key",
    "suite_code_version",
    "suite_source_paths",
]

#: appended to the code version for profiled runs — a distinct cache namespace
PROFILE_SALT = "+profile"


def code_version(extra_paths: tuple[str, ...] = ()) -> str:
    """Hash of every ``*.py`` under ``src/repro`` plus any extra files.

    Content-only (no mtimes), so the version is stable across checkouts and
    machines for identical sources.
    """
    pkg_root = Path(__file__).resolve().parents[1]
    h = hashlib.sha256()
    files = sorted(pkg_root.rglob("*.py"))
    for extra in sorted(extra_paths):
        p = Path(extra)
        if p.is_file():
            files.append(p)
    for f in files:
        h.update(str(f.name).encode())
        h.update(f.read_bytes())
    return h.hexdigest()


def point_key(point: PointSpec, code_ver: str) -> str:
    """The content-addressed cache key for one sweep point."""
    return spec_hash({"point": point.identity(), "code_version": code_ver})


def suite_source_paths(suite) -> tuple[str, ...]:
    """The suite's own bench file, when its module is importable."""
    mod = sys.modules.get(suite.source)
    src = getattr(mod, "__file__", None)
    return (src,) if src else ()


def suite_code_version(suite, *, profile: bool = False) -> str:
    """The full code version for one suite's points.

    Covers ``src/repro`` and the suite's bench file; ``profile=True`` salts
    the version so profiled and unprofiled results live in disjoint cache
    namespaces.
    """
    ver = code_version(extra_paths=suite_source_paths(suite))
    if profile:
        ver += PROFILE_SALT
    return ver
