"""Differential conformance: the fast machine against the reference oracle.

Every conformance point runs one algorithm **twice with the same algorithm
seed and the same fault-plan seed** — once on a :class:`ReferenceMachine`
(per-call scalar sends and relays, the executable specification) and once on
a fast :class:`SpatialMachine` (vectorized kernels, closed-form charging) —
and demands *exact* agreement:

- **payloads** bit-identical (``tobytes()``), same shape and dtype;
- **counters** exactly equal: :class:`MachineStats` (energy, messages,
  rounds, max_depth, max_distance), the per-phase :class:`CostTree`, and
  the :class:`RecoveryStats` fault accounting.

The fast path is an *optimization*, never an approximation, so any drift —
even one energy unit — is a hard failure.

Profiles extend the chaos grid with a fault-free point (see
:data:`CONFORMANCE_PROFILES`): ``clean`` runs without a fault plan; the
rest reuse :func:`~repro.runner.chaos.chaos_plan` with identically seeded
plans on both machines, so the retry/detour/sparing streams are replayed
against both implementations.

Strict mode interacts asymmetrically: ``REPRO_STRICT=1`` (or
``strict=True``) forces the reference path, so a "strict fast" machine
would silently compare the oracle against itself.  The harness therefore
lets the reference machine inherit the ambient strict flag (extra
validation on the specification side costs nothing) but pins the fast
machine to ``strict=False`` so the vectorized kernels genuinely execute —
this keeps the differential meaningful even in a ``REPRO_STRICT=1`` CI job.
Strict validation never changes accounting, so counters remain comparable.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..machine import FaultPlan, ReferenceMachine, SpatialMachine
from .chaos import CHAOS_ALGOS, chaos_plan

__all__ = [
    "CONFORMANCE_ALGOS",
    "CONFORMANCE_PROFILES",
    "conformance_plan",
    "run_conformance_pair",
    "run_conformance_point",
    "run_conformance_grid",
]


def _run_graph(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    """Iterated-SpMV workload: connected components on a seeded R-MAT graph.

    Uses a quarter of the working set (``n = side²/4`` vertices) — each CC
    round is a full semiring SpMV over ~4n entries, and the differential
    runs the whole loop on the per-call reference oracle, so the point cost
    stays comparable to the single-shot ``spmv`` entry.
    """
    from ..graphs import connected_components, rmat_coo

    n = max(4, (side * side) // 4)
    adjacency = rmat_coo(n, rng)
    return connected_components(m, adjacency).astype(np.float64)


#: the conformance grid covers the chaos algorithms — scan, blocked scan,
#: rank selection, the seven sorters, and SpMV — plus ``graph``, an
#: iterated-SpMV workload (connected components) that exercises per-round
#: phase spans and repeated kernel launches on one machine.
CONFORMANCE_ALGOS = {**CHAOS_ALGOS, "graph": _run_graph}

#: ``clean`` plus the seeded fault profiles of the chaos harness.
CONFORMANCE_PROFILES: tuple[str, ...] = ("clean", "drops", "corruption", "dead", "mixed")


def conformance_plan(profile: str, plan_seed: int, side: int) -> FaultPlan | None:
    """Materialize one conformance profile; ``clean`` means no plan at all."""
    if profile == "clean":
        return None
    return chaos_plan(profile, plan_seed, side)


def _payload_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()


def run_conformance_pair(
    algo: str,
    profile: str,
    side: int = 8,
    seed: int = 0,
    plan_seed: int | None = None,
) -> tuple[dict, SpatialMachine, SpatialMachine]:
    """Run ``algo`` on the reference oracle and on the fast machine; return
    (report, reference machine, fast machine).

    Both runs use the same algorithm generator seed and — for faulty
    profiles — identically seeded :class:`FaultPlan` instances, so the
    failure streams both machines must recover from are the same.
    """
    try:
        fn = CONFORMANCE_ALGOS[algo]
    except KeyError:
        raise ValueError(
            f"unknown conformance algo {algo!r}; have {', '.join(CONFORMANCE_ALGOS)}"
        ) from None
    if profile not in CONFORMANCE_PROFILES:
        raise ValueError(
            f"unknown conformance profile {profile!r}; "
            f"have {', '.join(CONFORMANCE_PROFILES)}"
        )
    if plan_seed is None:
        plan_seed = seed + 1_000_003

    # two separately constructed (but identically seeded) plans: a FaultPlan
    # carries its own rng stream, which each run advances
    ref_m = ReferenceMachine(faults=conformance_plan(profile, plan_seed, side))
    ref = fn(ref_m, side, np.random.default_rng(seed))

    fast_m = SpatialMachine(
        fast=True, strict=False, faults=conformance_plan(profile, plan_seed, side)
    )
    fast = fn(fast_m, side, np.random.default_rng(seed))

    checks = {
        "payload_equal": _payload_equal(np.asarray(ref), np.asarray(fast)),
        "stats_equal": ref_m.stats == fast_m.stats,
        "cost_tree_equal": ref_m.cost_tree.as_dict() == fast_m.cost_tree.as_dict(),
        "recovery_equal": ref_m.recovery.as_dict() == fast_m.recovery.as_dict(),
    }
    report = {
        "algo": algo,
        "profile": profile,
        "side": side,
        "seed": seed,
        "plan_seed": plan_seed,
        **checks,
        "conformant": all(checks.values()),
        "ref_stats": asdict(ref_m.stats),
        "fast_stats": asdict(fast_m.stats),
        "ref_recovery": ref_m.recovery.as_dict(),
        "fast_recovery": fast_m.recovery.as_dict(),
    }
    return report, ref_m, fast_m


def run_conformance_point(
    algo: str,
    profile: str,
    side: int = 8,
    seed: int = 0,
    plan_seed: int | None = None,
) -> dict:
    """JSON-friendly conformance report for one (algo, profile, seed) point."""
    report, _, _ = run_conformance_pair(algo, profile, side, seed, plan_seed)
    return report


def run_conformance_grid(
    algos: list[str] | None = None,
    profiles: list[str] | None = None,
    side: int = 8,
    seeds: tuple[int, ...] = (0,),
) -> list[dict]:
    """Cross (algos x profiles x seeds); returns one report per point."""
    out = []
    for algo in algos or list(CONFORMANCE_ALGOS):
        for profile in profiles or list(CONFORMANCE_PROFILES):
            for seed in seeds:
                out.append(run_conformance_point(algo, profile, side, seed))
    return out


def diff_point(report: dict) -> str:
    """Human-readable first-divergence summary for a failed point."""
    if report["conformant"]:
        return "conformant"
    parts = []
    if not report["payload_equal"]:
        parts.append("payload bytes differ")
    if not report["stats_equal"]:
        rs, fs = report["ref_stats"], report["fast_stats"]
        deltas = {k: (rs[k], fs[k]) for k in rs if rs[k] != fs.get(k)}
        parts.append(f"stats differ: {deltas}")
    if not report["cost_tree_equal"]:
        parts.append("cost tree differs")
    if not report["recovery_equal"]:
        parts.append(
            f"recovery differs: ref={report['ref_recovery']} "
            f"fast={report['fast_recovery']}"
        )
    return "; ".join(parts)
