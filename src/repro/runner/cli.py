"""``repro bench`` — the experiment-runner command group.

    repro bench list                                 # registered suites
    repro bench run --suite table1_sort --jobs 4     # one suite, 4 workers
    repro bench run --quick --jobs 2                 # CI smoke: all suites, tiny grids
    repro bench compare --baseline benchmarks/baselines/quick --current bench_out

``run`` writes one schema-valid ``BENCH_<suite>.json`` per suite and exits
non-zero if any point failed; ``compare`` exits non-zero when a gated metric
(energy, max_depth) regresses beyond the threshold against the baseline.
"""

from __future__ import annotations

from pathlib import Path

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .cachekey import suite_code_version
from .compare import GATED_METRICS, collect_results, compare_results
from .executor import RunConfig, run_points
from .registry import default_bench_dir, load_suites
from .result import METRIC_NAMES, build_bench_result, validate_bench_result, write_bench_result

__all__ = ["add_bench_parser"]


def _cmd_list(args) -> int:
    suites = load_suites(args.bench_dir or None)
    baseline_dir = (
        Path(args.bench_dir) if args.bench_dir else default_bench_dir()
    ) / "baselines" / "quick"
    width = max((len(n) for n in suites), default=10)
    print(f"{len(suites)} registered suite(s):")
    with_baseline = 0
    for name in sorted(suites):
        s = suites[name]
        n_full = len(s.grid.points(name))
        n_quick = len(s.quick.points(name))
        has_baseline = (baseline_dir / f"BENCH_{name}.json").is_file()
        with_baseline += has_baseline
        print(
            f"  {name:<{width}}  points={n_full:<3} quick={n_quick:<2} "
            f"baseline={'yes' if has_baseline else 'no ':<3} "
            f"{s.artifact or '(no artifact note)'}"
        )
    print(f"{with_baseline}/{len(suites)} suite(s) have a quick baseline in {baseline_dir}")
    return 0


def _cmd_run(args) -> int:
    suites = load_suites(args.bench_dir or None)
    if args.suite:
        missing = [n for n in args.suite if n not in suites]
        if missing:
            known = ", ".join(sorted(suites))
            raise SystemExit(f"unknown suite(s) {missing}; known: {known}")
        selected = [suites[n] for n in args.suite]
    else:
        selected = [suites[n] for n in sorted(suites)]

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    config = RunConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        use_cache=not args.no_cache,
        profile=args.profile,
    )
    out_dir = Path(args.out_dir)
    bench_dir = Path(args.bench_dir) if args.bench_dir else None
    log = (lambda msg: print(msg, flush=True)) if not args.quiet else None

    any_failed = False
    for suite in selected:
        spec = suite.spec(quick=args.quick, seed=args.seed)
        points = spec.points()
        # profiled points carry an extra "profile" payload — suite_code_version
        # salts the key so plain reruns never replay it (and vice versa)
        code_ver = suite_code_version(suite, profile=args.profile)
        print(f"{suite.name}: {len(points)} point(s), jobs={config.jobs}", flush=True)
        results = run_points(
            suite,
            points,
            config,
            cache=cache,
            code_ver=code_ver,
            bench_dir=bench_dir if bench_dir is not None else "",
            log=log,
        )
        doc = build_bench_result(
            suite.name,
            suite.artifact,
            spec.as_dict(),
            code_ver,
            {
                "jobs": config.jobs,
                "timeout": config.timeout,
                "retries": config.retries,
            },
            results,
        )
        problems = validate_bench_result(doc)
        if problems:  # pragma: no cover - internal invariant
            raise SystemExit(f"internal error: invalid BenchResult: {problems}")
        path = write_bench_result(out_dir / f"BENCH_{suite.name}.json", doc)
        s = doc["summary"]
        print(
            f"{suite.name}: ok={s['ok']} failed={s['failed']} cached={s['cached']} "
            f"wall={s['wall_time_s']:.2f}s -> {path}",
            flush=True,
        )
        any_failed = any_failed or s["failed"] > 0
    return 1 if any_failed else 0


def _cmd_compare(args) -> int:
    metrics = tuple(args.metric) if args.metric else GATED_METRICS
    unknown = [m for m in metrics if m not in METRIC_NAMES]
    if unknown:
        raise SystemExit(
            f"unknown metric(s): {', '.join(unknown)}; known: {', '.join(METRIC_NAMES)}"
        )
    try:
        baseline = collect_results(args.baseline)
        current = collect_results(args.current)
    except FileNotFoundError as e:
        raise SystemExit(str(e))
    rep = compare_results(
        baseline, current, threshold=args.threshold, metrics=metrics
    )
    print(rep.render())
    return 0 if rep.passed else 1


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` command group to the main CLI's subparsers."""
    bench = sub.add_parser(
        "bench", help="parallel experiment runner: list/run/compare benchmark suites"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    sp = bsub.add_parser("list", help="list registered benchmark suites")
    sp.add_argument("--bench-dir", default="", help="benchmarks directory (default: repo's)")
    sp.set_defaults(func=_cmd_list)

    sp = bsub.add_parser("run", help="run suites in parallel and write BENCH_<suite>.json")
    sp.add_argument("--suite", action="append", default=None,
                    help="suite to run (repeatable; default: all registered)")
    sp.add_argument("--quick", action="store_true",
                    help="use each suite's tiny quick grid (CI smoke)")
    sp.add_argument("--jobs", type=int, default=2, help="parallel worker processes")
    sp.add_argument("--seed", type=int, default=None,
                    help="override the sweep's seed list with this single seed")
    sp.add_argument("--timeout", type=float, default=300.0,
                    help="per-point timeout in seconds")
    sp.add_argument("--retries", type=int, default=2,
                    help="retries per point after a worker crash")
    sp.add_argument("--backoff", type=float, default=0.25,
                    help="base retry backoff in seconds (doubles per attempt)")
    sp.add_argument("--profile", action="store_true",
                    help="attach a SpatialProfiler to every point (adds a "
                         "'profile' section with hotspot/witness summaries)")
    sp.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    sp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help="result-cache directory")
    sp.add_argument("--out-dir", default=".", help="where BENCH_<suite>.json files go")
    sp.add_argument("--bench-dir", default="", help="benchmarks directory (default: repo's)")
    sp.add_argument("--quiet", action="store_true", help="suppress per-point progress")
    sp.set_defaults(func=_cmd_run)

    sp = bsub.add_parser(
        "compare", help="gate current results against a baseline (non-zero on regression)"
    )
    sp.add_argument("--baseline", required=True,
                    help="baseline BENCH_*.json file or directory")
    sp.add_argument("--current", default=".",
                    help="current BENCH_*.json file or directory (default: cwd)")
    sp.add_argument("--threshold", type=float, default=0.1,
                    help="relative regression tolerance (default 10%%)")
    sp.add_argument("--metric", action="append", default=None,
                    help=f"gated metrics (repeatable; default: {', '.join(GATED_METRICS)})")
    sp.set_defaults(func=_cmd_compare)
