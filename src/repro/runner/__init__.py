"""repro.runner — parallel experiment execution for the benchmark harness.

The subsystem turns the ad-hoc ``benchmarks/bench_*.py`` scripts into a
declarative, fault-tolerant, cached sweep runner:

* :mod:`repro.runner.spec` — :class:`ExperimentSpec` / :class:`SweepGrid`
  descriptions of (suite, sizes, seeds, repeats) with canonical hashing;
* :mod:`repro.runner.registry` — the :func:`register_suite` decorator every
  bench file uses, plus suite discovery;
* :mod:`repro.runner.executor` — a process-pool executor with per-task
  timeouts, bounded crash retry with backoff, and graceful degradation;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache keyed
  by (spec hash, code version);
* :mod:`repro.runner.result` — the unified ``BenchResult`` JSON schema
  (``BENCH_<suite>.json``);
* :mod:`repro.runner.compare` — the energy/depth regression gate behind
  ``repro bench compare``.

See ``docs/BENCHMARKS.md`` for the full workflow.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from .compare import GATED_METRICS, CompareReport, collect_results, compare_results
from .executor import RunConfig, run_points
from .registry import (
    REGISTRY,
    Suite,
    default_bench_dir,
    load_suites,
    point_from_machine,
    register_suite,
)
from .result import (
    METRIC_NAMES,
    SCHEMA_VERSION,
    PointResult,
    build_bench_result,
    load_bench_result,
    validate_bench_result,
    write_bench_result,
)
from .spec import ExperimentSpec, PointSpec, SweepGrid, canonical_json, spec_hash

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_version",
    "GATED_METRICS",
    "CompareReport",
    "collect_results",
    "compare_results",
    "RunConfig",
    "run_points",
    "REGISTRY",
    "Suite",
    "default_bench_dir",
    "load_suites",
    "point_from_machine",
    "register_suite",
    "METRIC_NAMES",
    "SCHEMA_VERSION",
    "PointResult",
    "build_bench_result",
    "load_bench_result",
    "validate_bench_result",
    "write_bench_result",
    "ExperimentSpec",
    "PointSpec",
    "SweepGrid",
    "canonical_json",
    "spec_hash",
]
