"""repro.runner — parallel experiment execution for the benchmark harness.

The subsystem turns the ad-hoc ``benchmarks/bench_*.py`` scripts into a
declarative, fault-tolerant, cached sweep runner:

* :mod:`repro.runner.spec` — :class:`ExperimentSpec` / :class:`SweepGrid`
  descriptions of (suite, sizes, seeds, repeats) with canonical hashing;
* :mod:`repro.runner.registry` — the :func:`register_suite` decorator every
  bench file uses, plus suite discovery;
* :mod:`repro.runner.executor` — a process-pool executor with per-task
  timeouts, bounded crash retry with backoff, and graceful degradation;
* :mod:`repro.runner.cachekey` — the single source of truth for cache-key
  derivation (point identity + code version, ``+profile`` salting), shared
  by the executor, the CLI, and the serving layer;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache keyed
  by :func:`~repro.runner.cachekey.point_key`;
* :mod:`repro.runner.pool` — a bounded pool of *persistent* worker processes
  (imports warm, one pipe round-trip per task) used by ``repro serve``;
* :mod:`repro.runner.result` — the unified ``BenchResult`` JSON schema
  (``BENCH_<suite>.json``);
* :mod:`repro.runner.compare` — the energy/depth regression gate behind
  ``repro bench compare``.

See ``docs/BENCHMARKS.md`` for the full workflow.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .cachekey import PROFILE_SALT, code_version, point_key, suite_code_version
from .compare import GATED_METRICS, CompareReport, collect_results, compare_results
from .executor import RunConfig, mp_context, run_points
from .pool import PoolCrash, PoolError, PoolTaskError, PoolTimeout, WorkerPool
from .registry import (
    REGISTRY,
    Suite,
    default_bench_dir,
    load_suites,
    point_from_machine,
    register_suite,
)
from .result import (
    METRIC_NAMES,
    SCHEMA_VERSION,
    PointResult,
    build_bench_result,
    load_bench_result,
    validate_bench_result,
    write_bench_result,
)
from .spec import ExperimentSpec, PointSpec, SweepGrid, canonical_json, spec_hash

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "PROFILE_SALT",
    "code_version",
    "point_key",
    "suite_code_version",
    "GATED_METRICS",
    "CompareReport",
    "collect_results",
    "compare_results",
    "RunConfig",
    "mp_context",
    "run_points",
    "PoolError",
    "PoolTimeout",
    "PoolCrash",
    "PoolTaskError",
    "WorkerPool",
    "REGISTRY",
    "Suite",
    "default_bench_dir",
    "load_suites",
    "point_from_machine",
    "register_suite",
    "METRIC_NAMES",
    "SCHEMA_VERSION",
    "PointResult",
    "build_bench_result",
    "load_bench_result",
    "validate_bench_result",
    "write_bench_result",
    "ExperimentSpec",
    "PointSpec",
    "SweepGrid",
    "canonical_json",
    "spec_hash",
]
