"""Chaos harness: every primitive under seeded fault plans.

Each chaos point runs one algorithm **twice with the same algorithm seed** —
once on a pristine machine and once under a :class:`~repro.machine.FaultPlan`
— then checks that the results are bit-identical and reports the cost of
surviving: energy/depth inflation factors and the recovery accounting
(retries, detours, sparing) that explains them.

Recovery in the simulator is *result-transparent* by construction (dropped
and corrupted messages are re-sent, dead cells are spared deterministically),
so a mismatch here means a bug in the fault layer, not an expected outcome;
the chaos suite and ``repro chaos`` both treat it as a hard failure.

Profiles are small named fault grids (see :data:`CHAOS_PROFILES`):

``drops``       5% per-attempt message drop probability
``corruption``  5% per-attempt payload corruption (detected + NACK + resend)
``dead``        a dead square of side ``max(1, side // 4)`` at (1, 1)
``mixed``       3% drops + 2% corruption + the dead square
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..machine import RECOVERY_PHASE, FaultPlan, Region, SpatialMachine

__all__ = [
    "CHAOS_ALGOS",
    "CHAOS_PROFILES",
    "chaos_plan",
    "run_chaos_pair",
    "run_chaos_point",
    "run_chaos_grid",
]


# ---------------------------------------------------------------------------
# algorithm runners: fn(machine, side, rng) -> result ndarray
# ---------------------------------------------------------------------------
def _run_scan(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.scan import scan

    region = Region(0, 0, side, side)
    x = rng.random(side * side)
    return scan(m, m.place_zorder(x, region), region).inclusive.payload.copy()


def _run_blocked_scan(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.blocked import blocked_scan

    x = rng.random(4 * side * side)
    return blocked_scan(m, x, block=4).prefix.copy()


def _run_select(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.selection import rank_select

    region = Region(0, 0, side, side)
    n = side * side
    x = rng.random(n)
    res = rank_select(m, m.place_zorder(x, region), region, n // 3 + 1, rng)
    return np.array([res.value])


def _sorter_input(m: SpatialMachine, side: int, rng: np.random.Generator):
    from ..core.sorting.sortutil import as_sort_payload

    region = Region(0, 0, side, side)
    x = rng.random(side * side)
    return m.place_rowmajor(as_sort_payload(x), region), region


def _run_mergesort(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.mergesort2d import sort_values

    x = rng.random(side * side)
    return sort_values(m, x, Region(0, 0, side, side)).payload[:, 0].copy()


def _run_quicksort(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.quicksort2d import quicksort_2d

    x = rng.random(side * side)
    return np.asarray(quicksort_2d(m, x, Region(0, 0, side, side), rng).payload).copy()


def _run_bitonic(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.bitonic import bitonic_sort

    ta, region = _sorter_input(m, side, rng)
    return bitonic_sort(m, ta, region).payload[:, 0].copy()


def _run_odd_even(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.odd_even import odd_even_mergesort

    ta, region = _sorter_input(m, side, rng)
    return odd_even_mergesort(m, ta, region).payload[:, 0].copy()


def _run_shearsort(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.mesh_sort import shearsort

    ta, region = _sorter_input(m, side, rng)
    return shearsort(m, ta, region).payload[:, 0].copy()


def _run_allpairs(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.allpairs import allpairs_sort

    ta, region = _sorter_input(m, side, rng)
    return allpairs_sort(m, ta, region).payload[:, 0].copy()


def _run_merge2d(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..core.sorting.merge2d import merge_sorted_2d
    from ..core.sorting.sortutil import as_sort_payload

    a = np.sort(rng.standard_normal(side * side))
    b = np.sort(rng.standard_normal(side * side))
    A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, side, side))
    B = m.place_rowmajor(as_sort_payload(b), Region(0, side, side, side))
    out = merge_sorted_2d(m, A, B, Region(0, 0, side, 2 * side))
    return out.payload[:, 0].copy()


def _run_spmv(m: SpatialMachine, side: int, rng: np.random.Generator) -> np.ndarray:
    from ..spmv import random_coo, spmv_spatial

    dim = side * side
    A = random_coo(dim, 4 * dim, rng)
    x = rng.standard_normal(dim)
    return np.asarray(spmv_spatial(m, A, x, rng=rng).payload).copy()


#: name -> runner, covering scan, blocked scan, rank selection, all seven
#: sorters, and SpMV (the acceptance list of ISSUE 3).
CHAOS_ALGOS: dict[str, Callable[[SpatialMachine, int, np.random.Generator], np.ndarray]] = {
    "scan": _run_scan,
    "blocked_scan": _run_blocked_scan,
    "select": _run_select,
    "mergesort": _run_mergesort,
    "quicksort": _run_quicksort,
    "bitonic": _run_bitonic,
    "oddeven": _run_odd_even,
    "shearsort": _run_shearsort,
    "allpairs": _run_allpairs,
    "merge2d": _run_merge2d,
    "spmv": _run_spmv,
}

#: profile name -> kwargs template (dead regions are side-dependent, so they
#: are materialized by :func:`chaos_plan`).
CHAOS_PROFILES: tuple[str, ...] = ("drops", "corruption", "dead", "mixed")


def chaos_plan(profile: str, plan_seed: int, side: int) -> FaultPlan:
    """Materialize one named fault profile for a ``side x side`` working set."""
    d = max(1, side // 4)
    dead = (Region(1, 1, d, d),)
    if profile == "drops":
        return FaultPlan.seeded(plan_seed, drop_prob=0.05)
    if profile == "corruption":
        return FaultPlan.seeded(plan_seed, corrupt_prob=0.05)
    if profile == "dead":
        return FaultPlan.seeded(plan_seed, dead_regions=dead)
    if profile == "mixed":
        return FaultPlan.seeded(plan_seed, drop_prob=0.03, corrupt_prob=0.02, dead_regions=dead)
    raise ValueError(f"unknown chaos profile {profile!r}; have {', '.join(CHAOS_PROFILES)}")


# ---------------------------------------------------------------------------
# point execution
# ---------------------------------------------------------------------------
def run_chaos_pair(
    algo: str,
    profile: str,
    side: int = 8,
    seed: int = 0,
    plan_seed: int | None = None,
) -> tuple[dict, SpatialMachine, SpatialMachine]:
    """Run ``algo`` clean and under ``profile``; return (report, clean machine,
    faulty machine).  Both runs use the same algorithm generator seed so any
    internal randomness (quicksort splitters, selection samples) matches."""
    try:
        fn = CHAOS_ALGOS[algo]
    except KeyError:
        raise ValueError(f"unknown chaos algo {algo!r}; have {', '.join(CHAOS_ALGOS)}") from None
    if plan_seed is None:
        plan_seed = seed + 1_000_003

    clean_m = SpatialMachine()
    clean = fn(clean_m, side, np.random.default_rng(seed))

    plan = chaos_plan(profile, plan_seed, side)
    faulty_m = SpatialMachine(faults=plan)
    faulty = fn(faulty_m, side, np.random.default_rng(seed))

    cs, fs = clean_m.stats, faulty_m.stats
    report = {
        "algo": algo,
        "profile": profile,
        "side": side,
        "seed": seed,
        "plan_seed": plan_seed,
        "plan": plan.describe(),
        "exact_match": bool(np.array_equal(clean, faulty)),
        "clean_energy": int(cs.energy),
        "faulty_energy": int(fs.energy),
        "clean_max_depth": int(cs.max_depth),
        "faulty_max_depth": int(fs.max_depth),
        "energy_inflation": (fs.energy / cs.energy) if cs.energy else 1.0,
        "depth_inflation": (fs.max_depth / cs.max_depth) if cs.max_depth else 1.0,
        "recovery": faulty_m.recovery.as_dict(),
        "recovery_phase_energy": int(faulty_m.cost_tree.root.child(RECOVERY_PHASE).energy),
    }
    return report, clean_m, faulty_m


def run_chaos_point(
    algo: str,
    profile: str,
    side: int = 8,
    seed: int = 0,
    plan_seed: int | None = None,
) -> dict:
    """JSON-friendly chaos report for one (algo, profile) point."""
    report, _, _ = run_chaos_pair(algo, profile, side, seed, plan_seed)
    return report


def run_chaos_grid(
    algos: list[str] | None = None,
    profiles: list[str] | None = None,
    side: int = 8,
    seeds: tuple[int, ...] = (0,),
) -> list[dict]:
    """Cross (algos x profiles x seeds); returns one report per point."""
    out = []
    for algo in algos or list(CHAOS_ALGOS):
        for profile in profiles or list(CHAOS_PROFILES):
            for seed in seeds:
                out.append(run_chaos_point(algo, profile, side, seed))
    return out
