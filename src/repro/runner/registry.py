"""The benchmark-suite registry.

Each ``benchmarks/bench_*.py`` file registers one (or more) *suites* with the
:func:`register_suite` decorator.  A suite is a point function

    def point(params: dict, rng: numpy.random.Generator) -> dict

that runs one sweep point on a fresh :class:`~repro.machine.SpatialMachine`
and returns the measurement dict produced by :func:`point_from_machine`.
Point functions must be deterministic given ``(params, seed)`` — all
randomness flows through the explicit ``rng``.

Discovery (:func:`load_suites`) imports every ``bench_*.py`` in a benchmarks
directory under a stable synthetic module name, so repeated loads — and
re-loads inside pool worker processes — are idempotent.
"""

from __future__ import annotations

import hashlib
import importlib.util
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from .spec import ExperimentSpec, SweepGrid

__all__ = [
    "Suite",
    "REGISTRY",
    "register_suite",
    "point_from_machine",
    "load_suites",
    "default_bench_dir",
]


@dataclass
class Suite:
    """One registered benchmark suite (derived from a ``bench_*.py`` file)."""

    name: str
    fn: Callable[[dict, Any], dict]
    artifact: str
    grid: SweepGrid
    quick: SweepGrid
    source: str
    timeout: float | None = None

    def spec(self, quick: bool = False, seed: int | None = None) -> ExperimentSpec:
        grid = self.quick if quick else self.grid
        if seed is not None:
            grid = SweepGrid(params=grid.params, seeds=(seed,), repeats=grid.repeats)
        return ExperimentSpec(suite=self.name, grid=grid, quick=quick)


#: global suite registry; :func:`load_suites` populates it idempotently.
REGISTRY: dict[str, Suite] = {}


def register_suite(
    name: str,
    *,
    artifact: str = "",
    grid: Mapping | list,
    quick: Mapping | list | None = None,
    seeds: tuple[int, ...] = (0,),
    repeats: int = 1,
    timeout: float | None = None,
):
    """Register the decorated point function as suite ``name``.

    ``grid``/``quick`` take the same shapes as :class:`SweepGrid.params`: a
    mapping of parameter axes (crossed) or an explicit list of param dicts.
    ``quick`` defaults to the full grid — give every real suite a tiny quick
    grid so ``repro bench run --quick`` stays CI-cheap.
    """

    full = SweepGrid(params=grid, seeds=seeds, repeats=repeats)
    small = SweepGrid(params=quick, seeds=seeds, repeats=repeats) if quick is not None else full

    def deco(fn: Callable[[dict, Any], dict]):
        REGISTRY[name] = Suite(
            name=name,
            fn=fn,
            artifact=artifact,
            grid=full,
            quick=small,
            source=getattr(fn, "__module__", "?"),
            timeout=timeout,
        )
        fn._suite_name = name
        return fn

    return deco


def point_from_machine(machine, **extra) -> dict:
    """Build a point measurement from a finished machine run.

    ``metrics`` carries the flat :class:`MachineStats` counters; ``phases``
    the flattened per-phase :class:`CostTree` rows; ``extra`` any suite-
    specific scalars (result depth/distance, baseline energies, ratios).
    When the machine carries a :class:`~repro.machine.profiler.SpatialProfiler`
    (``repro bench run --profile`` turns one on via ``REPRO_PROFILE``), its
    hotspot/witness summary rides along under ``profile``.
    """
    s = machine.stats
    out = {
        "metrics": {
            "energy": int(s.energy),
            "messages": int(s.messages),
            "rounds": int(s.rounds),
            "max_depth": int(s.max_depth),
            "max_distance": int(s.max_distance),
        },
        "phases": machine.cost_tree.flatten(),
        "extra": {k: _jsonable(v) for k, v in extra.items()},
    }
    profiler = getattr(machine, "profiler", None)
    if profiler is not None:
        out["profile"] = profiler.summary()
    return out


def _jsonable(v):
    if hasattr(v, "item"):  # numpy scalar
        return v.item()
    return v


def default_bench_dir() -> Path:
    """The repository's ``benchmarks/`` directory (source checkout layout)."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def _module_name(path: Path) -> str:
    digest = hashlib.sha1(str(path.parent).encode("utf-8")).hexdigest()[:8]
    return f"repro_bench_{digest}_{path.stem}"


def load_suites(bench_dir: str | Path | None = None) -> dict[str, Suite]:
    """Import every ``bench_*.py`` under ``bench_dir``; return the registry.

    Imports are cached in :data:`sys.modules` under a directory-scoped name,
    so calling this repeatedly (or inside a forked worker that inherited the
    parent's modules) never re-executes module bodies.
    """
    d = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    if not d.is_dir():
        raise FileNotFoundError(f"benchmarks directory not found: {d}")
    for path in sorted(d.glob("bench_*.py")):
        mod_name = _module_name(path)
        if mod_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(mod_name, path)
        if spec is None or spec.loader is None:  # pragma: no cover - defensive
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[mod_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception:
            del sys.modules[mod_name]
            raise
    return dict(REGISTRY)
