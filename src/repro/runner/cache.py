"""Content-addressed on-disk result cache.

A cache entry is one completed :class:`~repro.runner.result.PointResult`,
stored under ``<root>/<k[:2]>/<k>.json`` where ``k`` is the sha256 of the
point's canonical identity **plus the code version**:

    key = sha256({"point": point.identity(), "code_version": <hash of sources>})

Re-running an unchanged sweep therefore only reads JSON files; changing the
spec (different sizes/seeds/params) or any source file under ``src/repro``
(or the suite's own bench file) changes the key and transparently invalidates
exactly the affected entries.  Only ``status == "ok"`` points are cached —
failures re-execute on the next run.

Writes are torn-write safe under concurrency: each writer stages into a
pid-unique temp file, then atomically renames it into place while holding an
exclusive ``flock`` on a per-entry ``.lock`` file, so two simultaneous
``repro bench run`` invocations can never interleave partial JSON.  Reads
that do find a corrupt entry (e.g. from a power loss mid-rename on a
non-atomic filesystem) discard it — the file is unlinked, never loaded.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-posix
    fcntl = None  # type: ignore[assignment]

from .cachekey import code_version, point_key
from .result import PointResult
from .spec import PointSpec

__all__ = ["ResultCache", "code_version", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".bench_cache"


class ResultCache:
    """Filesystem-backed point-result cache (one JSON file per entry)."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    @staticmethod
    def key_for(point: PointSpec, code_ver: str) -> str:
        return point_key(point, code_ver)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @contextlib.contextmanager
    def _entry_lock(self, path: Path):
        """Exclusive advisory lock scoped to one cache entry.

        Serializes writers (and the corrupt-entry unlink in :meth:`get`)
        against each other across processes.  No-op where ``fcntl`` is
        unavailable — the pid-unique temp + atomic rename in :meth:`put`
        still prevents torn writes there.
        """
        if fcntl is None:  # pragma: no cover - non-posix
            yield
            return
        lock_path = path.with_suffix(".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "w") as lock_fh:
            fcntl.flock(lock_fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh, fcntl.LOCK_UN)

    def _discard(self, path: Path) -> None:
        """Unlink a corrupt entry so it is never considered again."""
        with self._entry_lock(path):
            with contextlib.suppress(OSError):
                path.unlink()

    # -- access ---------------------------------------------------------
    def get(self, key: str) -> PointResult | None:
        path = self.path_for(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self._discard(path)
            self.misses += 1
            return None
        try:
            res = PointResult.from_dict(doc)
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        res.cached = True
        return res

    def put(self, key: str, result: PointResult) -> None:
        if result.status != "ok":
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = result.as_dict()
        doc["cached"] = False  # stored form; flagged True on retrieval
        # pid-unique temp: concurrent writers never share a staging file
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with self._entry_lock(path):
            try:
                with open(tmp, "w") as fh:
                    json.dump(doc, fh)
                tmp.replace(path)
            finally:
                with contextlib.suppress(OSError):
                    tmp.unlink()
