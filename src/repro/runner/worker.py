"""Child-process entry point for the sweep executor.

Workers never receive function objects: a task is ``(bench_dir, suite name,
params, seed, profile?)``, and the child re-resolves the suite through
:func:`~repro.runner.registry.load_suites` (a no-op after fork, a fresh
import under spawn).  The result — or a formatted traceback — travels back
over a one-shot pipe; a worker that dies without sending anything is treated
as a crash by the parent and retried.
"""

from __future__ import annotations

import traceback

__all__ = ["worker_entry"]


def worker_entry(
    conn,
    bench_dir: str,
    suite_name: str,
    params: dict,
    seed: int,
    profile: bool = False,
) -> None:
    try:
        import os

        import numpy as np

        from .registry import load_suites

        if profile:
            # Suites build their own SpatialMachine; the environment flag is
            # how a profiler reaches machines we never see constructed (the
            # machine's ``profile=None`` default consults REPRO_PROFILE).
            os.environ["REPRO_PROFILE"] = "1"

        suites = load_suites(bench_dir or None)
        suite = suites[suite_name]
        rng = np.random.default_rng(seed)
        out = suite.fn(dict(params), rng)
        if not isinstance(out, dict) or "metrics" not in out:
            raise TypeError(
                f"suite {suite_name!r} returned {type(out).__name__}, expected the "
                "point_from_machine() dict"
            )
        conn.send(("ok", out))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=30)))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass
