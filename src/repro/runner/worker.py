"""Child-process entry points for the sweep executor and the worker pool.

Workers never receive function objects: a task is ``(bench_dir, suite name,
params, seed, profile?)``, and the child re-resolves the suite through
:func:`~repro.runner.registry.load_suites` (a no-op after fork, a fresh
import under spawn).  Two process shapes share the same execution core
(:func:`run_suite_point`):

* :func:`worker_entry` — one-shot: run a single task, report over a one-shot
  pipe, exit.  Used by the batch executor, where per-task process isolation
  is the point (a segfault kills only that point).
* :func:`pool_worker_main` — persistent: loop over tasks arriving on a
  duplex pipe until told to stop.  Used by the serving layer's
  :class:`~repro.runner.pool.WorkerPool`, where fork-per-request would
  dominate small-simulation latency.

A worker that dies without sending anything is treated as a crash by the
parent (retried by the executor; respawned by the pool).
"""

from __future__ import annotations

import traceback

__all__ = ["run_suite_point", "worker_entry", "pool_worker_main"]

#: lazily created per-process tracer for pool workers (None until first task
#: with trace context; NullTracer when REPRO_TRACE_DIR is unset)
_TRACER = None


def _worker_tracer():
    global _TRACER
    if _TRACER is None:
        from ..obs.tracer import tracer_from_env

        _TRACER = tracer_from_env("worker")
    return _TRACER


def run_suite_point(
    bench_dir: str,
    suite_name: str,
    params: dict,
    seed: int,
    profile: bool = False,
) -> dict:
    """Resolve ``suite_name`` and execute one point; return its payload dict.

    Raises whatever the point function raises; raises :class:`TypeError`
    when the suite returns something other than the ``point_from_machine()``
    shape.  ``profile`` sets ``REPRO_PROFILE`` for the duration of the call —
    suites build their own SpatialMachine, and the environment flag is how a
    profiler reaches machines we never see constructed (the machine's
    ``profile=None`` default consults REPRO_PROFILE).  The flag is restored
    afterwards so persistent pool workers can interleave profiled and
    unprofiled tasks.
    """
    import os

    import numpy as np

    from .registry import load_suites

    suites = load_suites(bench_dir or None)
    suite = suites[suite_name]
    rng = np.random.default_rng(seed)
    if profile:
        os.environ["REPRO_PROFILE"] = "1"
    try:
        out = suite.fn(dict(params), rng)
    finally:
        if profile:
            os.environ.pop("REPRO_PROFILE", None)
    if not isinstance(out, dict) or "metrics" not in out:
        raise TypeError(
            f"suite {suite_name!r} returned {type(out).__name__}, expected the "
            "point_from_machine() dict"
        )
    return out


def worker_entry(
    conn,
    bench_dir: str,
    suite_name: str,
    params: dict,
    seed: int,
    profile: bool = False,
) -> None:
    """One-shot executor child: run the task, send the outcome, exit."""
    try:
        out = run_suite_point(bench_dir, suite_name, params, seed, profile)
        conn.send(("ok", out))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=30)))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def pool_worker_main(conn, bench_dir: str) -> None:
    """Persistent pool child: execute tasks from ``conn`` until shutdown.

    The protocol is one ``(suite_name, params, seed, profile[, trace])``
    tuple per task, answered with ``("ok", payload)`` or ``("error",
    traceback)``.  ``None`` — or a closed pipe — ends the loop.  The
    optional fifth element carries distributed-tracing context (parent span
    ids); when present and ``REPRO_TRACE_DIR`` is set, the task runs inside
    a ``worker.execute`` span whose attributes link the request trace to the
    machine-level cost breakdown (energy, messages, and the ``phases`` rows
    of the CostTree when the task was profiled).

    The first message the child ever sends is a ``("ready", pid)`` warm-up
    handshake: the parent pool uses it for readiness reporting (a freshly
    spawned worker that has not yet entered its task loop is "warming"),
    and skips it transparently when it arrives interleaved with a result.
    """
    import os

    try:
        conn.send(("ready", os.getpid()))
    except (OSError, ValueError):  # pragma: no cover - parent already gone
        return
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        suite_name, params, seed, profile, *rest = task
        trace = rest[0] if rest else None
        span = None
        if trace:
            tracer = _worker_tracer()
            if tracer.enabled:
                from ..obs.context import TraceContext

                span = tracer.start_span(
                    "worker.execute",
                    parent=TraceContext(trace["trace"], trace["parent"]),
                    attrs={"suite": suite_name, "seed": int(seed)},
                )
        try:
            out = run_suite_point(bench_dir, suite_name, params, seed, profile)
            msg = ("ok", out)
            if span is not None:
                metrics = out.get("metrics") or {}
                span.set(
                    energy=metrics.get("energy"),
                    messages=metrics.get("messages"),
                    rounds=metrics.get("rounds"),
                    max_depth=metrics.get("max_depth"),
                )
                phases = out.get("phases")
                if phases:
                    # the CostTree link: phase rows render as nested
                    # sub-slices of this span in the merged Chrome trace
                    span.set(phases=phases[:64])
                span.end()
        except BaseException:
            msg = ("error", traceback.format_exc(limit=30))
            if span is not None:
                span.end("error")
        try:
            conn.send(msg)
        except (OSError, ValueError):  # pragma: no cover - parent went away
            break
    try:
        conn.close()
    except Exception:  # pragma: no cover
        pass
