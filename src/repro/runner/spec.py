"""Declarative experiment descriptions for the benchmark runner.

An :class:`ExperimentSpec` names a registered suite and the sweep to run; a
:class:`SweepGrid` expands parameter lists into concrete :class:`PointSpec`
points (the cartesian product of the parameter axes, crossed with seeds and
repeats).  Every spec is JSON-serializable and canonically hashable: the
content-addressed result cache and the ``repro bench compare`` gate both key
on :func:`spec_hash` of the canonical form, so two runs describing the same
work always agree on identity regardless of dict ordering.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "canonical_json",
    "spec_hash",
    "PointSpec",
    "SweepGrid",
    "ExperimentSpec",
]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN escapes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def spec_hash(obj: Any) -> str:
    """sha256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PointSpec:
    """One concrete unit of work: a suite's point function at fixed inputs."""

    suite: str
    params: Mapping[str, Any]
    seed: int = 0
    repeat: int = 0

    def identity(self) -> dict:
        """The matching key used by the cache and the compare gate."""
        return {
            "suite": self.suite,
            "params": dict(self.params),
            "seed": self.seed,
            "repeat": self.repeat,
        }

    def label(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.params.items())]
        parts.append(f"seed={self.seed}")
        if self.repeat:
            parts.append(f"rep={self.repeat}")
        return " ".join(parts)


@dataclass(frozen=True)
class SweepGrid:
    """Parameter axes to sweep.

    ``params`` is either a mapping ``{name: [values...]}`` (expanded as the
    cartesian product, axes in sorted-name order) or an explicit sequence of
    parameter dicts (for sweeps whose points are not a full cross product,
    e.g. a mode that only makes sense at small sizes).
    """

    params: Any
    seeds: tuple[int, ...] = (0,)
    repeats: int = 1

    def param_sets(self) -> list[dict]:
        if isinstance(self.params, Mapping):
            names = sorted(self.params)
            axes = [list(self.params[k]) for k in names]
            return [dict(zip(names, combo)) for combo in itertools.product(*axes)]
        return [dict(p) for p in self.params]

    def points(self, suite: str) -> list[PointSpec]:
        out = []
        for ps in self.param_sets():
            for seed in self.seeds:
                for rep in range(self.repeats):
                    out.append(PointSpec(suite=suite, params=ps, seed=seed, repeat=rep))
        return out

    def as_dict(self) -> dict:
        if isinstance(self.params, Mapping):
            params = {k: list(v) for k, v in sorted(self.params.items())}
        else:
            params = [dict(p) for p in self.params]
        return {"params": params, "seeds": list(self.seeds), "repeats": self.repeats}


@dataclass(frozen=True)
class ExperimentSpec:
    """A suite plus the sweep to run over it (the unit ``repro bench run`` executes)."""

    suite: str
    grid: SweepGrid
    quick: bool = False

    def points(self) -> list[PointSpec]:
        return self.grid.points(self.suite)

    def as_dict(self) -> dict:
        return {"suite": self.suite, "grid": self.grid.as_dict(), "quick": self.quick}

    def hash(self) -> str:
        return spec_hash(self.as_dict())
