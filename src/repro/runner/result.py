"""The unified ``BenchResult`` JSON schema.

One ``BENCH_<suite>.json`` document per suite run:

.. code-block:: json

    {
      "schema_version": 1,
      "suite": "table1_sort",
      "artifact": "Table I row 2 ...",
      "code_version": "1f2e3d...",
      "generated_at": "2026-08-06T12:00:00+00:00",
      "spec": {"suite": ..., "grid": {...}, "quick": false},
      "config": {"jobs": 4, "timeout": 120.0, "retries": 2},
      "points": [ { ...PointResult... } ],
      "summary": {"total": 4, "ok": 4, "failed": 0, "cached": 0, "wall_time_s": 3.2}
    }

Every point carries the flat :class:`MachineStats` counters (energy,
messages, rounds, max_depth, max_distance), the flattened per-phase
``CostTree`` rows, the wall-clock time, and a status — a failed or timed-out
point is recorded (``status: "failed"``) instead of aborting the sweep.
A point run under ``repro bench run --profile`` additionally carries an
optional ``profile`` object (the :meth:`SpatialProfiler.summary
<repro.machine.profiler.SpatialProfiler.summary>` document: hotspot stats,
top cells, link skew, critical-path witnesses); readers must treat the key
as absent on unprofiled runs.
"""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "METRIC_NAMES",
    "PointResult",
    "build_bench_result",
    "validate_bench_result",
    "write_bench_result",
    "load_bench_result",
]

SCHEMA_VERSION = 1

METRIC_NAMES = ("energy", "messages", "rounds", "max_depth", "max_distance")


@dataclass
class PointResult:
    """Outcome of one sweep point (one worker task, or one cache hit)."""

    params: dict
    seed: int
    repeat: int
    status: str  # "ok" | "failed"
    cached: bool = False
    attempts: int = 1
    wall_time_s: float = 0.0
    error: str | None = None
    metrics: dict | None = None
    phases: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: optional profiler summary (``--profile`` runs only; omitted otherwise)
    profile: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict:
        d = {
            "params": dict(self.params),
            "seed": self.seed,
            "repeat": self.repeat,
            "status": self.status,
            "cached": self.cached,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time_s, 6),
            "error": self.error,
            "metrics": dict(self.metrics) if self.metrics is not None else None,
            "phases": list(self.phases),
            "extra": dict(self.extra),
        }
        if self.profile is not None:
            d["profile"] = dict(self.profile)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "PointResult":
        return cls(
            params=dict(d["params"]),
            seed=int(d["seed"]),
            repeat=int(d.get("repeat", 0)),
            status=d["status"],
            cached=bool(d.get("cached", False)),
            attempts=int(d.get("attempts", 1)),
            wall_time_s=float(d.get("wall_time_s", 0.0)),
            error=d.get("error"),
            metrics=d.get("metrics"),
            phases=list(d.get("phases", [])),
            extra=dict(d.get("extra", {})),
            profile=d.get("profile"),
        )


def build_bench_result(
    suite_name: str,
    artifact: str,
    spec_dict: dict,
    code_version: str,
    config: dict,
    points: list[PointResult],
) -> dict:
    total_wall = sum(p.wall_time_s for p in points)
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite_name,
        "artifact": artifact,
        "code_version": code_version,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "spec": spec_dict,
        "config": config,
        "points": [p.as_dict() for p in points],
        "summary": {
            "total": len(points),
            "ok": sum(p.ok for p in points),
            "failed": sum(not p.ok for p in points),
            "cached": sum(p.cached for p in points),
            "wall_time_s": round(total_wall, 6),
        },
    }


def validate_bench_result(doc: Any) -> list[str]:
    """Return schema problems (an empty list means the document is valid)."""
    errs: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errs.append(f"schema_version must be {SCHEMA_VERSION}")
    for key in ("suite", "code_version", "generated_at"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errs.append(f"missing/empty string field {key!r}")
    if not isinstance(doc.get("spec"), dict):
        errs.append("missing object field 'spec'")
    points = doc.get("points")
    if not isinstance(points, list):
        return errs + ["missing array field 'points'"]
    for i, p in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(p, dict):
            errs.append(f"{where} is not an object")
            continue
        if p.get("status") not in ("ok", "failed"):
            errs.append(f"{where}.status must be 'ok' or 'failed'")
        if not isinstance(p.get("params"), dict):
            errs.append(f"{where}.params must be an object")
        if not isinstance(p.get("seed"), int):
            errs.append(f"{where}.seed must be an int")
        if p.get("status") == "ok":
            m = p.get("metrics")
            if not isinstance(m, dict):
                errs.append(f"{where}.metrics must be an object on ok points")
            else:
                for name in METRIC_NAMES:
                    if not isinstance(m.get(name), (int, float)):
                        errs.append(f"{where}.metrics.{name} missing or non-numeric")
            if not isinstance(p.get("phases"), list):
                errs.append(f"{where}.phases must be an array")
            if "profile" in p and not isinstance(p["profile"], dict):
                errs.append(f"{where}.profile must be an object when present")
        else:
            if not p.get("error"):
                errs.append(f"{where} failed without an error message")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errs.append("missing object field 'summary'")
    else:
        if summary.get("total") != len(points):
            errs.append("summary.total disagrees with len(points)")
        n_ok = sum(1 for p in points if isinstance(p, dict) and p.get("status") == "ok")
        if summary.get("ok") != n_ok:
            errs.append("summary.ok disagrees with the points")
    return errs


def write_bench_result(path: str | Path, doc: dict) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    return p


def load_bench_result(path: str | Path) -> dict:
    with open(path) as fh:
        return json.load(fh)
