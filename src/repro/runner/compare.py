"""The ``repro bench compare`` regression gate.

Compares current ``BENCH_<suite>.json`` documents against a baseline (a file
or a directory of such files).  Points are matched by canonical identity
``(suite, params, seed, repeat)``; for every matched pair the gated metrics
(energy and max_depth by default — the model counters are deterministic
given the seed) must not exceed ``baseline * (1 + threshold)``.  Also gated:
a point that was ok in the baseline but failed or disappeared in the current
run.  Improvements are reported but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .result import load_bench_result
from .spec import canonical_json

__all__ = ["GATED_METRICS", "CompareReport", "collect_results", "compare_results"]

GATED_METRICS = ("energy", "max_depth")


@dataclass
class CompareReport:
    """Outcome of one baseline-vs-current comparison."""

    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    compared_points: int = 0

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"compared {self.compared_points} point(s)"]
        for n in self.notes:
            lines.append(f"  note: {n}")
        for i in self.improvements:
            lines.append(f"  improved: {i}")
        for r in self.regressions:
            lines.append(f"  REGRESSION: {r}")
        lines.append(
            "PASS: no regressions"
            if self.passed
            else f"FAIL: {len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def collect_results(path: str | Path) -> dict[str, dict]:
    """Load BenchResult docs from a file or a directory of ``BENCH_*.json``."""
    p = Path(path)
    docs: dict[str, dict] = {}
    if p.is_dir():
        files = sorted(p.glob("BENCH_*.json"))
    elif p.is_file():
        files = [p]
    else:
        raise FileNotFoundError(f"no results at {p}")
    for f in files:
        doc = load_bench_result(f)
        name = doc.get("suite") or f.stem.removeprefix("BENCH_")
        docs[name] = doc
    return docs


def _point_key(point: dict) -> str:
    return canonical_json(
        {
            "params": point.get("params", {}),
            "seed": point.get("seed", 0),
            "repeat": point.get("repeat", 0),
        }
    )


def _point_index(doc: dict) -> dict[str, dict]:
    return {_point_key(p): p for p in doc.get("points", [])}


def compare_results(
    baseline: dict[str, dict],
    current: dict[str, dict],
    *,
    threshold: float = 0.1,
    metrics: tuple[str, ...] = GATED_METRICS,
) -> CompareReport:
    rep = CompareReport()
    for suite_name in sorted(baseline):
        base_doc = baseline[suite_name]
        cur_doc = current.get(suite_name)
        if cur_doc is None:
            rep.regressions.append(f"{suite_name}: suite missing from current results")
            continue
        cur_points = _point_index(cur_doc)
        for key, bp in _point_index(base_doc).items():
            if bp.get("status") != "ok":
                rep.notes.append(f"{suite_name} {bp.get('params')}: baseline point failed; skipped")
                continue
            cp = cur_points.get(key)
            label = f"{suite_name} {bp.get('params')} seed={bp.get('seed')}"
            if cp is None:
                rep.regressions.append(f"{label}: point missing from current results")
                continue
            if cp.get("status") != "ok":
                err = (cp.get("error") or "?").splitlines()[-1][:100]
                rep.regressions.append(f"{label}: point failed in current run ({err})")
                continue
            rep.compared_points += 1
            bm, cm = bp.get("metrics") or {}, cp.get("metrics") or {}
            for name in metrics:
                if name not in bm:
                    continue
                base_v, cur_v = float(bm[name]), float(cm.get(name, float("inf")))
                if cur_v > base_v * (1.0 + threshold) + 1e-9:
                    pct = 100.0 * (cur_v - base_v) / base_v if base_v else float("inf")
                    rep.regressions.append(
                        f"{label}: {name} {base_v:g} -> {cur_v:g} (+{pct:.1f}% > "
                        f"{threshold:.0%} threshold)"
                    )
                elif cur_v < base_v * (1.0 - threshold) - 1e-9:
                    pct = 100.0 * (base_v - cur_v) / base_v
                    rep.improvements.append(
                        f"{label}: {name} {base_v:g} -> {cur_v:g} (-{pct:.1f}%)"
                    )
    extra = sorted(set(current) - set(baseline))
    if extra:
        rep.notes.append(f"suites only in current (not gated): {', '.join(extra)}")
    return rep
