"""A bounded pool of persistent worker processes.

The batch executor forks one process per sweep point — the right trade for
long-running points where isolation dominates.  A serving layer answering
many small simulation requests needs the opposite trade: workers that stay
alive (imports warm, registry loaded) and cost one pipe round-trip per task
instead of one fork.  :class:`WorkerPool` provides that, reusing the same
multiprocessing context (:func:`~repro.runner.executor.mp_context`) and the
same child protocol (:func:`~repro.runner.worker.pool_worker_main`, built on
the executor's :func:`~repro.runner.worker.run_suite_point`).

Failure semantics:

* a task that exceeds its timeout gets its worker killed and replaced; the
  caller sees :class:`PoolTimeout`;
* a worker that dies mid-task (segfault, OOM-kill) is replaced; the caller
  sees :class:`PoolCrash`;
* a deterministic exception inside the point function travels back as a
  formatted traceback and raises :class:`PoolTaskError` — the worker stays
  alive.

:meth:`WorkerPool.run` blocks and is thread-safe; async callers wrap it in
``asyncio.to_thread`` (see :mod:`repro.service.executor`).  Workers are
forked at construction time — create the pool *before* starting threads or
an event loop.
"""

from __future__ import annotations

import threading
import time

from .executor import mp_context
from .worker import pool_worker_main

__all__ = ["PoolError", "PoolTimeout", "PoolCrash", "PoolTaskError", "WorkerPool"]


class PoolError(RuntimeError):
    """Base class for pool-side failures."""


class PoolTimeout(PoolError):
    """The task exceeded its deadline; the worker was killed and replaced."""


class PoolCrash(PoolError):
    """The worker died without reporting; it was replaced."""


class PoolTaskError(PoolError):
    """The point function raised; carries the child's formatted traceback."""


class _Worker:
    def __init__(self, ctx, bench_dir: str) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=pool_worker_main,
            args=(child_conn, bench_dir),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        #: True once the child's ("ready", pid) handshake has been consumed
        self.warm = False

    def consume_ready(self, timeout: float = 0.0) -> bool:
        """Consume the warm-up handshake if it has arrived; True when warm."""
        if self.warm:
            return True
        try:
            if self.conn.poll(timeout):
                self.conn.recv()  # the first message is always ("ready", pid)
                self.warm = True
        except (EOFError, OSError):
            return False
        return self.warm

    def stop(self, graceful: bool = True) -> None:
        if graceful:
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=2)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2)


class WorkerPool:
    """``size`` persistent worker processes behind a blocking ``run()``."""

    def __init__(self, size: int = 2, bench_dir: str = "") -> None:
        self.size = max(1, int(size))
        self.bench_dir = str(bench_dir or "")
        self._ctx = mp_context()
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(self.size)
        self._closed = False
        self._idle = [self._spawn() for _ in range(self.size)]
        #: lifetime counters (read under no lock; informational only)
        self.tasks = 0
        self.replaced = 0

    def _spawn(self) -> _Worker:
        return _Worker(self._ctx, self.bench_dir)

    def run(
        self,
        suite_name: str,
        params: dict,
        seed: int,
        profile: bool = False,
        *,
        timeout: float = 60.0,
        trace: dict | None = None,
    ) -> dict:
        """Execute one point on an idle worker; block until it answers.

        ``trace`` optionally carries distributed-tracing context (the parent
        span's ids) into the worker's task envelope; workers without tracing
        enabled ignore it.  Thread-safe: at most ``size`` tasks execute
        concurrently, excess callers wait on the slot semaphore.
        """
        if self._closed:
            raise PoolError("worker pool is closed")
        self._slots.acquire()
        with self._lock:
            worker = self._idle.pop()
        self.tasks += 1
        replace = False
        try:
            try:
                worker.conn.send(
                    (suite_name, dict(params), int(seed), bool(profile), trace)
                )
                deadline = time.monotonic() + timeout
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not worker.conn.poll(remaining):
                        replace = True
                        raise PoolTimeout(f"no result within {timeout:.1f}s")
                    kind, payload = worker.conn.recv()
                    if kind == "ready":  # startup handshake racing the task
                        worker.warm = True
                        continue
                    break
            except PoolTimeout:
                raise
            except (EOFError, OSError, BrokenPipeError) as exc:
                replace = True
                code = getattr(worker.proc, "exitcode", None)
                raise PoolCrash(f"pool worker died mid-task (exit {code})") from exc
        finally:
            if replace:
                worker.stop(graceful=False)
                self.replaced += 1
                worker = self._spawn()
            with self._lock:
                self._idle.append(worker)
            self._slots.release()
        if kind == "error":
            raise PoolTaskError(str(payload))
        return payload

    def ready(self) -> bool:
        """True once every worker has completed its warm-up handshake.

        Workers currently executing a task count as warm (they answered or
        are answering); idle workers are polled without blocking.  A fresh
        pool therefore reports not-ready until each forked/spawned child has
        entered its task loop — the signal ``/readyz`` needs.
        """
        with self._lock:
            if self._closed:
                return False
            idle = list(self._idle)
            busy = self.size - len(idle)
            warm = sum(1 for w in idle if w.consume_ready())
        return warm + busy == self.size

    def close(self) -> None:
        """Stop every worker; in-flight tasks should be drained first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._idle = self._idle, []
        for w in workers:
            w.stop()

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
