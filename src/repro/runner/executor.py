"""Parallel sweep execution with timeouts, retry, and graceful degradation.

The executor fans a suite's sweep points out across worker *processes* (one
process per point, at most ``jobs`` alive at once) so a segfaulting or
runaway point can never take the parent — or the rest of the sweep — down:

* **per-task timeout** — a point that exceeds its deadline is terminated and
  recorded as ``status: "failed"`` (``error: "timeout ..."``);
* **bounded retry with backoff** — a worker that dies without reporting
  (crash, OOM-kill) is retried up to ``retries`` times with exponential
  backoff; exhaustion records a failure.  Exceptions *inside* the point
  function are deterministic and are not retried;
* **graceful degradation** — every failure becomes a failed
  :class:`PointResult`; the sweep always runs to completion.

Completed points are stored in the :class:`~repro.runner.cache.ResultCache`
(when one is given) so re-running an unchanged spec only replays JSON reads.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable

import numpy as np

from .cache import ResultCache
from .cachekey import point_key
from .registry import Suite
from .result import PointResult
from .spec import PointSpec
from .worker import worker_entry

__all__ = ["RunConfig", "mp_context", "retry_delay", "run_points"]


@dataclass(frozen=True)
class RunConfig:
    """Knobs for one sweep execution."""

    jobs: int = 2
    timeout: float = 300.0
    retries: int = 2
    backoff: float = 0.25
    jitter: float = 0.5
    use_cache: bool = True
    #: run every point under a SpatialProfiler (sets REPRO_PROFILE in workers)
    profile: bool = False


def retry_delay(config: RunConfig, point_seed: int, index: int, attempt: int) -> float:
    """Backoff before retrying a crashed worker: exponential plus jitter.

    The jitter term desynchronizes retries when several workers die at once
    (e.g. an OOM sweep) so they do not stampede back in lockstep, yet it is
    *deterministic*: drawn from a generator seeded by the point's own seed,
    its sweep index, and the attempt number, so re-running a sweep reproduces
    the exact same schedule.  ``config.jitter`` scales the spread — delay is
    uniform in ``[base, base * (1 + jitter)]`` with ``base = backoff * 2^a``.
    """
    base = config.backoff * (2**attempt)
    if config.jitter <= 0.0:
        return base
    rng = np.random.default_rng((point_seed, index, attempt))
    return base * (1.0 + config.jitter * float(rng.random()))


def mp_context():
    """The multiprocessing context shared by the executor and the worker pool.

    fork keeps the (already imported) registry warm in children; fall back
    to spawn where fork does not exist.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        return multiprocessing.get_context("spawn")


@dataclass
class _Running:
    proc: object
    index: int
    point: PointSpec
    attempt: int
    started: float
    deadline: float


def run_points(
    suite: Suite,
    points: list[PointSpec],
    config: RunConfig,
    *,
    cache: ResultCache | None = None,
    code_ver: str = "",
    bench_dir: str | Path = "",
    log: Callable[[str], None] | None = None,
) -> list[PointResult]:
    """Execute ``points`` of ``suite``; return one PointResult per point, in order."""
    say = log if log is not None else (lambda _msg: None)
    timeout = suite.timeout if suite.timeout is not None else config.timeout
    results: dict[int, PointResult] = {}
    pending: deque[tuple[int, PointSpec, int, float]] = deque()

    for i, pt in enumerate(points):
        if config.use_cache and cache is not None:
            hit = cache.get(point_key(pt, code_ver))
            if hit is not None:
                results[i] = hit
                say(f"  [{suite.name}] {pt.label()}: cached")
                continue
        pending.append((i, pt, 0, 0.0))

    ctx = mp_context()
    running: dict[object, _Running] = {}

    def _finish(i: int, res: PointResult, pt: PointSpec) -> None:
        results[i] = res
        if res.ok and cache is not None and config.use_cache:
            cache.put(point_key(pt, code_ver), res)
        state = "ok" if res.ok else f"FAILED ({(res.error or '?').splitlines()[-1][:80]})"
        say(f"  [{suite.name}] {pt.label()}: {state} in {res.wall_time_s:.2f}s")

    def _launch(i: int, pt: PointSpec, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_entry,
            args=(
                child_conn,
                str(bench_dir),
                suite.name,
                dict(pt.params),
                pt.seed,
                config.profile,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        now = time.monotonic()
        running[parent_conn] = _Running(proc, i, pt, attempt, now, now + timeout)

    try:
        while pending or running:
            now = time.monotonic()
            # fill free worker slots with eligible tasks
            while pending and len(running) < max(1, config.jobs):
                i, pt, attempt, eligible = pending[0]
                if eligible > now:
                    break  # only backoff-delayed retries remain at the front
                pending.popleft()
                _launch(i, pt, attempt)
            if not running:
                if pending:  # everything left is waiting out a backoff
                    time.sleep(max(0.0, pending[0][3] - time.monotonic()))
                continue
            next_deadline = min(r.deadline for r in running.values())
            wait_for = min(max(0.0, next_deadline - time.monotonic()), 0.5)
            ready = mp_connection.wait(list(running), timeout=wait_for)
            for conn in ready:
                r = running.pop(conn)
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    kind, payload = "crash", None
                conn.close()
                r.proc.join(timeout=5)
                wall = time.monotonic() - r.started
                base = dict(
                    params=dict(r.point.params),
                    seed=r.point.seed,
                    repeat=r.point.repeat,
                    attempts=r.attempt + 1,
                    wall_time_s=wall,
                )
                if kind == "ok":
                    _finish(
                        r.index,
                        PointResult(
                            status="ok",
                            metrics=payload["metrics"],
                            phases=payload.get("phases", []),
                            extra=payload.get("extra", {}),
                            profile=payload.get("profile"),
                            **base,
                        ),
                        r.point,
                    )
                elif kind == "error":
                    _finish(
                        r.index,
                        PointResult(status="failed", error=str(payload), **base),
                        r.point,
                    )
                else:  # crash: the worker died without reporting
                    code = getattr(r.proc, "exitcode", None)
                    if r.attempt < config.retries:
                        delay = retry_delay(config, r.point.seed, r.index, r.attempt)
                        say(
                            f"  [{suite.name}] {r.point.label()}: worker crashed "
                            f"(exit {code}), retry {r.attempt + 1}/{config.retries} "
                            f"in {delay:.2f}s"
                        )
                        pending.append(
                            (r.index, r.point, r.attempt + 1, time.monotonic() + delay)
                        )
                    else:
                        _finish(
                            r.index,
                            PointResult(
                                status="failed",
                                error=(
                                    f"worker crashed (exit code {code}) on all "
                                    f"{r.attempt + 1} attempts"
                                ),
                                **base,
                            ),
                            r.point,
                        )
            # enforce per-task deadlines
            now = time.monotonic()
            for conn in [c for c, r in running.items() if r.deadline <= now]:
                r = running.pop(conn)
                r.proc.terminate()
                r.proc.join(timeout=5)
                conn.close()
                _finish(
                    r.index,
                    PointResult(
                        params=dict(r.point.params),
                        seed=r.point.seed,
                        repeat=r.point.repeat,
                        status="failed",
                        attempts=r.attempt + 1,
                        wall_time_s=now - r.started,
                        error=f"timeout after {timeout:.1f}s",
                    ),
                    r.point,
                )
    finally:
        for r in running.values():  # pragma: no cover - interrupt path
            try:
                r.proc.terminate()
            except Exception:
                pass

    return [results[i] for i in range(len(points))]
