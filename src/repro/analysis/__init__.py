"""Exponent fitting, table rendering and workload generators for the harness."""

from .fitting import (
    PowerFit,
    doubling_ratios,
    fit_power_law,
    phase_exponents,
    polylog_consistent,
    tail_exponent,
)
from .tables import banner, render_cost_tree, render_table
from .workloads import WORKLOADS, make_workload

__all__ = [
    "PowerFit",
    "doubling_ratios",
    "fit_power_law",
    "phase_exponents",
    "polylog_consistent",
    "tail_exponent",
    "banner",
    "render_cost_tree",
    "render_table",
    "WORKLOADS",
    "make_workload",
]
