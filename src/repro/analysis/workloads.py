"""Shared input generators for tests and benchmarks.

The paper's algorithms are comparison-based and data-oblivious in costs
except for the randomized selection, but constants and tie behaviour depend
on the value distribution; the sweeps therefore cover uniform, adversarial
(reversed), already-sorted, few-distinct (tie-heavy), and Zipf-skewed inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_workload", "WORKLOADS"]

WORKLOADS = ("uniform", "reversed", "sorted", "few_distinct", "zipf")


def make_workload(kind: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Generate ``n`` float64 values of the given workload ``kind``."""
    if kind == "uniform":
        return rng.random(n)
    if kind == "reversed":
        return np.arange(n, 0, -1, dtype=np.float64)
    if kind == "sorted":
        return np.arange(n, dtype=np.float64)
    if kind == "few_distinct":
        return rng.integers(0, max(2, n // 64), n).astype(np.float64)
    if kind == "zipf":
        return rng.zipf(1.5, n).astype(np.float64)
    raise ValueError(f"unknown workload kind {kind!r}")
