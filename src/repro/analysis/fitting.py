"""Empirical scaling analysis for the benchmark harness.

The paper's evaluation is its bound table (Table I); since our substrate is a
simulator rather than the authors' testbed, the reproduction criterion is the
*shape* of the costs: fitted log-log slopes close to the claimed exponents,
polylog quantities growing strictly slower than any power, and the
who-wins ordering between algorithms preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PowerFit",
    "fit_power_law",
    "doubling_ratios",
    "polylog_consistent",
    "phase_exponents",
]


@dataclass(frozen=True)
class PowerFit:
    """Least-squares fit of ``cost ~ constant * n^exponent``."""

    exponent: float
    constant: float
    r_squared: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"n^{self.exponent:.3f} (c={self.constant:.3g}, R²={self.r_squared:.4f})"


def fit_power_law(ns: np.ndarray, costs: np.ndarray) -> PowerFit:
    """Fit ``log(cost) = exponent * log(n) + log(constant)``."""
    ns = np.asarray(ns, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if len(ns) < 2:
        raise ValueError("need at least two points to fit")
    if (costs <= 0).any() or (ns <= 0).any():
        raise ValueError("power-law fit needs positive data")
    lx, ly = np.log(ns), np.log(costs)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerFit(exponent=float(slope), constant=float(np.exp(intercept)), r_squared=r2)


def tail_exponent(ns: np.ndarray, costs: np.ndarray, points: int = 3) -> float:
    """Slope over only the largest ``points`` sizes (sheds small-n noise)."""
    ns = np.asarray(ns, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    order = np.argsort(ns)
    return fit_power_law(ns[order][-points:], costs[order][-points:]).exponent


def doubling_ratios(ns: np.ndarray, costs: np.ndarray) -> list[tuple[float, float]]:
    """``(n_{i+1}/n_i, cost_{i+1}/cost_i)`` pairs, for ratio tables."""
    ns = np.asarray(ns, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    return [
        (float(ns[i + 1] / ns[i]), float(costs[i + 1] / costs[i]))
        for i in range(len(ns) - 1)
    ]


def phase_exponents(ns, trees, metric: str = "inclusive_energy") -> dict:
    """Per-phase power-law fits across a size sweep.

    ``trees`` is one :class:`~repro.machine.metrics.CostTree` per size in
    ``ns`` (e.g. from ``measure().per_phase`` at each ``n``).  Returns
    ``{phase_path: PowerFit}`` for every phase present at *all* sizes with a
    positive ``metric`` throughout — phases that appear only at some sizes,
    or are free, can't be fitted and are skipped.  ``metric`` is any key of
    :meth:`CostTree.flatten` rows (default: inclusive energy), so a bench
    can ask which sub-phase drives the top-level exponent.
    """
    ns = np.asarray(ns, dtype=np.float64)
    if len(ns) != len(trees):
        raise ValueError("one cost tree per size required")
    series: dict[str, list[float]] = {}
    for tree in trees:
        for row in tree.flatten():
            series.setdefault(row["path"], []).append(float(row[metric]))
    fits: dict[str, PowerFit] = {}
    for path, costs in series.items():
        if len(costs) != len(ns):
            continue
        arr = np.asarray(costs)
        if (arr <= 0).any():
            continue
        fits[path] = fit_power_law(ns, arr)
    return fits


def polylog_consistent(ns: np.ndarray, costs: np.ndarray, max_power: float = 0.35) -> bool:
    """Heuristic check that ``costs`` grows like a polylog, not a power.

    A polylog's log-log slope tends to 0; we accept when the slope over the
    larger half of the sweep is below ``max_power`` (log^3 over practical
    ranges shows slopes around 0.2-0.3).
    """
    ns = np.asarray(ns, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    order = np.argsort(ns)
    half = max(2, len(ns) // 2)
    fit = fit_power_law(ns[order][-half:], costs[order][-half:])
    return fit.exponent < max_power
