"""Plain-text table rendering for the benchmark harness output.

Every bench prints the rows/series of the paper artifact it regenerates;
these helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.metrics import CostTree

__all__ = ["render_table", "banner", "render_cost_tree"]


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(banner(title))
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_cost_tree(
    tree: "CostTree", title: str | None = None, min_energy: int = 0
) -> str:
    """Render a phase-cost tree in the harness' house style.

    Thin wrapper over :meth:`CostTree.render` that adds the usual banner, so
    bench output mixes flat tables and phase breakdowns uniformly.
    """
    body = tree.render(min_energy=min_energy)
    if title:
        return f"{banner(title)}\n{body}"
    return body


def _fmt(c: object) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1e5 or abs(c) < 1e-3:
            return f"{c:.3g}"
        return f"{c:.3f}".rstrip("0").rstrip(".")
    return str(c)
