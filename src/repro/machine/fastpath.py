"""Vectorized fast-path kernels for :class:`~repro.machine.machine.SpatialMachine`.

The machine's fast mode charges batched operations through flat array
programs instead of per-call Python.  The contract (enforced by
``repro conformance`` and ``tests/test_fast_conformance.py``) is *exact*
equivalence with the per-call reference path: identical counters and cost
trees, identical recovery stats, identical tracer/profiler feeds, and —
critically — an identical rng stream under a seeded
:class:`~repro.machine.faults.FaultPlan`.

The rng contract shapes the one remaining Python loop here:
``sample_failures`` draws twice per *call*, and the reference path calls it
once per communicating chain in chain order, so the batched kernel must do
the same.  Everything rng-free (hop distances, sparing and detour extras,
segment sums, maxima) is computed flat over a ``(chain, hop)`` layout.

Segment reductions use cumulative sums rather than ``np.add.reduceat``:
``reduceat`` returns ``arr[start]`` — not 0 — for an empty segment, and
zero-hop chains are legal inputs.
"""

from __future__ import annotations

import numpy as np

from .faults import backoff_ticks, detour_extras, sample_failures, spare_extras
from .metrics import META_DTYPE

__all__ = [
    "quad_broadcast_charge",
    "quad_offsets",
    "quad_reduce_charge",
    "quad_reduce_offsets",
    "quadrant_broadcast_fast",
    "quadrant_reduce_fast",
    "relay_many_fast",
    "segment_sums",
]


def segment_sums(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum ``values`` over the segments ``[starts[i], starts[i+1])``.

    The final segment ends at ``len(values)``.  Empty segments (consecutive
    equal starts) sum to 0.
    """
    cs = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=cs[1:])
    ends = np.empty(len(starts), dtype=np.int64)
    if len(starts):
        ends[:-1] = starts[1:]
        ends[-1] = len(values)
    return cs[ends] - cs[starts]


# quadrant-offset tables keyed by lattice side; a few KB per power of two
_QUAD_TABLES: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}


def _quad_tables(side: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(row_off, col_off, depth_off, dist_off) per final quadrant index.

    The doubling loop appends the three shifted copies after the originals,
    so after ``k = log2(side)`` levels the element that started at position
    ``i`` ends at ``b * m + i``, where base-4 digit ``l-1`` of ``b`` is the
    quadrant choice at level ``l`` (0 stay, 1 east, 2 south, 3 south-east)
    with shift ``h = side >> l``.  The offsets below are those choices summed.
    """
    cached = _QUAD_TABLES.get(side)
    if cached is not None:
        return cached
    k = side.bit_length() - 1
    b = np.arange(side * side, dtype=np.int64)
    row_off = np.zeros(len(b), dtype=np.int64)
    col_off = np.zeros(len(b), dtype=np.int64)
    depth_off = np.zeros(len(b), dtype=META_DTYPE)
    dist_off = np.zeros(len(b), dtype=META_DTYPE)
    for lvl in range(1, k + 1):
        h = side >> lvl
        q = (b >> (2 * (lvl - 1))) & 3
        row_off += np.where(q >= 2, h, 0)
        col_off += np.where(q & 1, h, 0)
        depth_off += q != 0
        dist_off += np.where(q == 3, 2 * h, np.where(q != 0, h, 0))
    tables = (row_off, col_off, depth_off, dist_off)
    _QUAD_TABLES[side] = tables
    return tables


def quad_offsets(side: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Public accessor for the per-quadrant offset tables (read-only)."""
    return _quad_tables(side)


# reduce-side tables: same quadrant digits, but level l of the reduce works
# the SMALLEST quads first (h = 2**(l-1)), the mirror image of the broadcast
_QUAD_REDUCE_TABLES: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}


def _quad_reduce_tables(side: int) -> tuple[np.ndarray, np.ndarray, int]:
    """(depth_off, dist_off, energy_per_block) for a block-local Z index.

    ``depth_off``/``dist_off`` are the metadata increments carried to the
    block corner: entry ``z``'s value is moved (by its successive carriers)
    once per nonzero base-4 digit of ``z``, where digit ``j`` is the
    quadrant choice at scale ``h = 2**j`` (0 stay, 1 east, 2 south, 3
    south-east — hop distance h, h, 2h onto the quad's Z-first cell).
    ``energy_per_block`` counts each level's actual hops once — at level
    ``j`` only the ``per / 4**(j+1)`` quad corners move, not every entry.
    """
    cached = _QUAD_REDUCE_TABLES.get(side)
    if cached is not None:
        return cached
    per = side * side
    k = side.bit_length() - 1
    z = np.arange(per, dtype=np.int64)
    depth_off = np.zeros(len(z), dtype=META_DTYPE)
    dist_off = np.zeros(len(z), dtype=META_DTYPE)
    energy = 0
    for j in range(k):
        h = 1 << j
        q = (z >> (2 * j)) & 3
        depth_off += q != 0
        dist_off += np.where(q == 3, 2 * h, np.where(q != 0, h, 0))
        energy += 4 * h * (per >> (2 * (j + 1)))
    tables = (depth_off, dist_off, energy)
    _QUAD_REDUCE_TABLES[side] = tables
    return tables


def quad_reduce_offsets(side: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Public accessor for the reduce offset tables, Z-indexed (read-only)."""
    return _quad_reduce_tables(side)


def quad_reduce_charge(machine, nblocks, side):
    """Charge a quadrant reduce's exact counters without materializing it.

    ``nblocks`` blocks of ``side * side`` entries each; per block every entry
    but the Z-first moves exactly once along its digit path.  Counterpart of
    :func:`quad_broadcast_charge` for callers that reconstruct the per-block
    metadata themselves.
    """
    _, _, block_energy = _quad_reduce_tables(side)
    per = side * side
    k = side.bit_length() - 1
    st = machine.stats
    node = machine._phase_node
    energy = nblocks * block_energy
    messages = nblocks * (per - 1)
    st.energy += energy
    st.messages += messages
    st.rounds += 3 * k
    if node is not None:
        node.energy += energy
        node.messages += messages
        node.sends += 3 * k


# scaled variants plus the per-element counter units, keyed (side, scale)
_QUAD_SCALED: dict[
    tuple[int, int],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int],
]
_QUAD_SCALED = {}


def _quad_scaled(side: int, scale: int):
    cached = _QUAD_SCALED.get((side, scale))
    if cached is not None:
        return cached
    row_off, col_off, depth_off, dist_off = _quad_tables(side)
    if scale != 1:
        row_off = row_off * scale
        col_off = col_off * scale
        dist_off = dist_off * scale
    # per input element: three sends per level, costing h, h and 2h each
    energy_unit = sum(
        4 * (side >> lvl) * scale * 4 ** (lvl - 1)
        for lvl in range(1, side.bit_length())
    )
    messages_unit = side * side - 1
    cached = (
        row_off[:, None],
        col_off[:, None],
        depth_off[:, None],
        dist_off[:, None],
        energy_unit,
        messages_unit,
    )
    _QUAD_SCALED[(side, scale)] = cached
    return cached


def quad_broadcast_charge(machine, m, side, scale, depth_in_max, dist_in_max):
    """Charge a quadrant broadcast's exact counters without materializing it.

    ``m`` values, each replicated ``side * side``-fold with block stride
    ``scale``; ``depth_in_max``/``dist_in_max`` are the input metadata maxima.
    Callers that reconstruct the output metadata themselves (the all-pairs
    fast path) use this to keep the books identical to the reference loop.
    """
    _, _, _, _, energy_unit, messages_unit = _quad_scaled(side, scale)
    k = side.bit_length() - 1
    st = machine.stats
    node = machine._phase_node
    energy = m * energy_unit
    messages = m * messages_unit
    st.energy += energy
    st.messages += messages
    st.rounds += 3 * k
    dmax = depth_in_max + k
    smax = dist_in_max + 2 * (side - 1) * scale
    if dmax > st.max_depth:
        st.max_depth = dmax
    if smax > st.max_distance:
        st.max_distance = smax
    if node is not None:
        node.energy += energy
        node.messages += messages
        node.sends += 3 * k
        if dmax > node.max_depth:
            node.max_depth = dmax
        if smax > node.max_distance:
            node.max_distance = smax


def quadrant_broadcast_fast(machine, ta, side, scale):
    """Closed form of the recursive quadrant replication loop.

    Charges the loop's exact counters (energy, messages, rounds, sends,
    maxima) and returns the final ``(payload, rows, cols, depth, dist)``
    components in the loop's element order.  Clean runs only — the caller
    guards out strict mode, tracer/profiler, and fault plans.
    """
    row_off, col_off, depth_off, dist_off, _, _ = _quad_scaled(side, scale)
    quad_broadcast_charge(
        machine, len(ta), side, scale, int(ta.depth.max()), int(ta.dist.max())
    )
    rows = (ta.rows[None, :] + row_off).ravel()
    cols = (ta.cols[None, :] + col_off).ravel()
    depth = (ta.depth[None, :] + depth_off).ravel()
    dist = (ta.dist[None, :] + dist_off).ravel()
    p = ta.payload
    if p.ndim == 1:
        payload = np.tile(p, side * side)
    else:
        payload = np.tile(p, (side * side,) + (1,) * (p.ndim - 1))
    return payload, rows, cols, depth, dist


def quadrant_reduce_fast(machine, payload, depth, dist, side, combine):
    """Closed-form quadrant-tree reduce over the raw field arrays.

    Trusts :meth:`SpatialMachine.quadrant_reduce`'s layout contract (one
    entry per cell of each square block, block-local Z-order): every hop
    distance is then fixed by the Z-geometry, so counters and per-entry
    metadata increments come from precomputed offset tables — entry ``z``
    moves once per nonzero base-4 digit of ``z`` (see
    :func:`_quad_reduce_tables`).  Only the payload fold still walks the
    levels, preserving the reference's exact floating-point combination
    order.  Returns the per-block ``(payload, depth, dist)`` — positions are
    the caller's block corners.  Clean runs only; the caller guards.
    """
    depth_off, dist_off, _ = _quad_reduce_tables(side)
    per = side * side
    k = side.bit_length() - 1
    nblocks = len(depth) // per
    quad_reduce_charge(machine, nblocks, side)
    depth = (depth.reshape(nblocks, per) + depth_off).max(axis=1)
    dist = (dist.reshape(nblocks, per) + dist_off).max(axis=1)
    machine.observe(depth, dist)
    for _ in range(k):
        payload = combine(
            combine(combine(payload[0::4], payload[1::4]), payload[2::4]),
            payload[3::4],
        )
    return payload, depth, dist


def relay_many_fast(machine, chains, carry=None):
    """Batched :meth:`SpatialMachine.relay` over a flattened hop layout.

    See :meth:`SpatialMachine.relay_many` for the API.  ``machine`` must be
    a fast-mode :class:`SpatialMachine`; this function performs all of the
    call's charging (stats, cost tree, recovery, tracer, profiler).
    """
    K = len(chains)
    results: list[tuple[int, int]] = [(0, 0)] * K
    st = machine.stats
    node = machine._phase_node

    # ---- flatten: each non-empty chain contributes a [src, stops...] run
    node_parts_r: list[np.ndarray] = []
    node_parts_c: list[np.ndarray] = []
    meta0: list[tuple[int, int]] = []
    flat_of: list[int] = []  # chain index -> flat segment index (-1: no stops)
    hops_per: list[int] = []
    for src, stop_rows, stop_cols, depth0, dist0 in chains:
        stop_rows, stop_cols = machine._coerce_coords(stop_rows, stop_cols, "relay")
        meta0.append((int(depth0), int(dist0)))
        if len(stop_rows) == 0:
            flat_of.append(-1)
            continue
        flat_of.append(len(hops_per))
        hops_per.append(len(stop_rows))
        node_parts_r.append(np.concatenate([[src[0]], stop_rows]))
        node_parts_c.append(np.concatenate([[src[1]], stop_cols]))

    nseg = len(hops_per)
    hops = np.asarray(hops_per, dtype=np.int64)
    hop_start = np.zeros(nseg, dtype=np.int64)
    if nseg:
        np.cumsum(hops[:-1], out=hop_start[1:])
        node_r = np.concatenate(node_parts_r)
        node_c = np.concatenate(node_parts_c)
        # hop endpoints: consecutive node pairs within each chain's run
        node_start = hop_start + np.arange(nseg, dtype=np.int64)
        keep = np.ones(len(node_r), dtype=bool)
        keep[node_start] = False
        to_idx = np.nonzero(keep)[0]
        from_idx = to_idx - 1
        fr_r, fr_c = node_r[from_idx], node_c[from_idx]
        to_r, to_c = node_r[to_idx], node_c[to_idx]
        d = np.abs(to_r - fr_r) + np.abs(to_c - fr_c)
        nz = d > 0
    else:
        d = np.zeros(0, dtype=np.int64)
        nz = np.zeros(0, dtype=bool)
        fr_r = fr_c = to_r = to_c = d

    messages_per = segment_sums(nz, hop_start)
    total_messages = int(messages_per.sum())

    # ---- fault recovery, flat (rng-free parts) + per-chain rng sampling
    plan = machine.faults
    spare_per = np.zeros(nseg, dtype=np.int64)
    detour_per = np.zeros(nseg, dtype=np.int64)
    retries_per = np.zeros(nseg, dtype=np.int64)
    retry_e_per = np.zeros(nseg, dtype=np.int64)
    hop_failures = None
    d_eff = d
    if plan is not None and plan.injects_faults and total_messages:
        rec = machine.recovery
        if plan.dead_regions:
            node_extra, node_spared = spare_extras(plan, node_r, node_c)
            # each hop pays for both of its endpoints' spares
            sp = node_extra[from_idx] + node_extra[to_idx]
            sp[~nz] = 0
            spare_per = segment_sums(sp, hop_start)
            spare_total = int(spare_per.sum())
            if spare_total:
                d_eff = d_eff + sp
                rec.spared += int((node_spared[to_idx] & nz).sum())
                rec.spare_energy += spare_total
            extra = detour_extras(plan.dead_regions, fr_r, fr_c, to_r, to_c)
            extra[~nz] = 0
            detour_per = segment_sums(extra, hop_start)
            detour_total = int(detour_per.sum())
            if detour_total:
                d_eff = d_eff + extra
                rec.detoured += int((extra > 0).sum())
                rec.detour_energy += detour_total
        if plan.failure_prob > 0.0:
            # one sample_failures call per communicating chain, in chain
            # order: the rng stream must match the sequential relay loop
            fail_flat = np.zeros(len(d), dtype=META_DTYPE)
            any_fail = False
            for j in range(nseg):
                mj = int(messages_per[j])
                if not mj:
                    continue
                f, dropped, corrupted = sample_failures(plan, mj)
                if not f.any():
                    continue
                any_fail = True
                seg = slice(int(hop_start[j]), int(hop_start[j] + hops[j]))
                view = fail_flat[seg]
                view[nz[seg]] = f
                rj = int(f.sum())
                retries_per[j] = rj
                rec.dropped += int(dropped.sum())
                rec.corrupted += int(corrupted.sum())
                rec.retries += rj
                rec.backoff_ticks += backoff_ticks(plan, f)
                rec.max_attempts = max(rec.max_attempts, int(f.max()) + 1)
            if any_fail:
                hop_failures = fail_flat
                retry_e_per = segment_sums(d_eff * fail_flat, hop_start)
                rec.retry_energy += int(retry_e_per.sum())

    # ---- flat counters (sums and round counts distribute over chains)
    energy_per = segment_sums(d, hop_start)
    deff_per = energy_per + spare_per + detour_per
    energy_total = int(energy_per.sum())
    retries_total = int(retries_per.sum())
    st.energy += (
        energy_total
        + int(spare_per.sum())
        + int(detour_per.sum())
        + int(retry_e_per.sum())
    )
    st.messages += total_messages + retries_total
    comm = messages_per > 0
    ncomm = int(np.count_nonzero(comm))
    st.rounds += ncomm
    if node is not None:
        node.energy += energy_total
        node.messages += total_messages
        node.sends += ncomm

    tracer = machine.tracer
    profiler = machine.profiler
    round_ids = None
    if (tracer is not None or profiler is not None) and nseg:
        # chain j's round id as the sequential loop would have assigned it
        round_ids = (st.rounds - ncomm) + np.cumsum(comm)
        if tracer is not None:
            phase = machine.current_phase
            for j in range(nseg):
                seg = slice(int(hop_start[j]), int(hop_start[j] + hops[j]))
                tracer.record(
                    fr_r[seg], fr_c[seg], to_r[seg], to_c[seg],
                    int(round_ids[j]), phase=phase, kind="relay",
                )

    # ---- per-chain outputs: carry resolution, maxima, recovery, profiler
    phase = machine.current_phase
    prev = (0, 0)
    for i in range(K):
        d0, s0 = meta0[i]
        if carry is not None and carry[i]:
            d0, s0 = prev
        j = flat_of[i]
        if j < 0:
            prev = (d0, s0)
            results[i] = prev
            continue
        depth = d0 + int(messages_per[j]) + int(retries_per[j])
        dist = s0 + int(deff_per[j]) + int(retry_e_per[j])
        if depth > st.max_depth:
            st.max_depth = depth
        if dist > st.max_distance:
            st.max_distance = dist
        if node is not None:
            if depth > node.max_depth:
                node.max_depth = depth
            if dist > node.max_distance:
                node.max_distance = dist
        if profiler is not None and messages_per[j]:
            seg = slice(int(hop_start[j]), int(hop_start[j] + hops[j]))
            att = nz[seg].astype(META_DTYPE)
            per_hop_dist = d_eff[seg]
            hf = None
            if hop_failures is not None and retries_per[j]:
                hf = hop_failures[seg]
                att = att + hf
                per_hop_dist = d_eff[seg] * (1 + hf)
            profiler.record_send(
                fr_r[seg], fr_c[seg], to_r[seg], to_c[seg],
                d_eff[seg], hf, nz[seg],
                d0 + np.cumsum(att), s0 + np.cumsum(per_hop_dist),
                phase, "relay", int(round_ids[j]),
            )
        rec_energy = int(spare_per[j]) + int(detour_per[j]) + int(retry_e_per[j])
        rj = int(retries_per[j])
        if rec_energy or rj:
            machine._charge_recovery(rec_energy, rj, None)
        prev = (depth, dist)
        results[i] = prev
    return results
