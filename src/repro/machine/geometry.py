"""Grid geometry for the Spatial Computer Model.

The Spatial Computer Model places processors on an unbounded Cartesian 2D grid.
A processor is addressed by integer coordinates ``(row, col)``.  Sending a
message from ``(i, j)`` to ``(x, y)`` costs Manhattan distance
``|x - i| + |y - j|`` (paper, Section I.A).

This module provides the :class:`Region` rectangle abstraction used by every
algorithm to describe the subgrid it operates on, together with vectorized
Manhattan-distance helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Region",
    "manhattan",
    "manhattan_arrays",
]


def manhattan(r0: int, c0: int, r1: int, c1: int) -> int:
    """Manhattan distance between two processors (scalar form)."""
    return abs(int(r1) - int(r0)) + abs(int(c1) - int(c0))


def manhattan_arrays(
    rows0: np.ndarray, cols0: np.ndarray, rows1: np.ndarray, cols1: np.ndarray
) -> np.ndarray:
    """Elementwise Manhattan distances between two batches of coordinates.

    All four inputs broadcast against each other; the result is an ``int64``
    array of per-message wire distances.
    """
    return np.abs(
        np.asarray(rows1, dtype=np.int64) - np.asarray(rows0, dtype=np.int64)
    ) + np.abs(np.asarray(cols1, dtype=np.int64) - np.asarray(cols0, dtype=np.int64))


# row-major div/mod enumerations keyed by (n, width); the corner offset is
# added per call, so cached arrays are shared across congruent regions
_ROWMAJOR_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle of processors.

    ``Region(row, col, height, width)`` covers rows ``row .. row+height-1`` and
    columns ``col .. col+width-1``.  Regions are value objects; all algorithms
    take the region they run on explicitly so that recursive calls can hand
    quadrants down without copying any state.
    """

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height < 0 or self.width < 0:
            raise ValueError(f"Region dimensions must be non-negative: {self}")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of processors in the region."""
        return self.height * self.width

    @property
    def is_square(self) -> bool:
        return self.height == self.width

    @property
    def row_end(self) -> int:
        """One past the last row."""
        return self.row + self.height

    @property
    def col_end(self) -> int:
        """One past the last column."""
        return self.col + self.width

    def diameter(self) -> int:
        """Largest Manhattan distance between two processors in the region."""
        if self.size == 0:
            return 0
        return (self.height - 1) + (self.width - 1)

    def contains(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized membership test."""
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        return (
            (rows >= self.row)
            & (rows < self.row_end)
            & (cols >= self.col)
            & (cols < self.col_end)
        )

    # ------------------------------------------------------------------
    # subdivision
    # ------------------------------------------------------------------
    def quadrants(self) -> tuple["Region", "Region", "Region", "Region"]:
        """Split into four quadrants in Z-order: TL, TR, BL, BR.

        Requires even height and width so the split is exact; the paper
        assumes n is a power of 4 (Section III), which we inherit.
        """
        if self.height % 2 or self.width % 2:
            raise ValueError(f"cannot quarter region with odd side: {self}")
        h2, w2 = self.height // 2, self.width // 2
        return (
            Region(self.row, self.col, h2, w2),
            Region(self.row, self.col + w2, h2, w2),
            Region(self.row + h2, self.col, h2, w2),
            Region(self.row + h2, self.col + w2, h2, w2),
        )

    def halves(self, axis: int) -> tuple["Region", "Region"]:
        """Split in two along ``axis`` (0 = split rows, 1 = split columns)."""
        if axis == 0:
            if self.height % 2:
                raise ValueError(f"cannot halve odd height: {self}")
            h2 = self.height // 2
            return (
                Region(self.row, self.col, h2, self.width),
                Region(self.row + h2, self.col, h2, self.width),
            )
        if self.width % 2:
            raise ValueError(f"cannot halve odd width: {self}")
        w2 = self.width // 2
        return (
            Region(self.row, self.col, self.height, w2),
            Region(self.row, self.col + w2, self.height, w2),
        )

    # ------------------------------------------------------------------
    # coordinate enumeration
    # ------------------------------------------------------------------
    def rowmajor_coords(self, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Coordinates of the first ``n`` cells in row-major order.

        ``n`` defaults to the full region size.
        """
        if n is None:
            n = self.size
        if n > self.size:
            raise ValueError(f"requested {n} cells from region of size {self.size}")
        cached = _ROWMAJOR_CACHE.get((n, self.width))
        if cached is None:
            idx = np.arange(n, dtype=np.int64)
            cached = (idx // self.width, idx % self.width)
            _ROWMAJOR_CACHE[(n, self.width)] = cached
        return self.row + cached[0], self.col + cached[1]

    def rowmajor_index(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`rowmajor_coords` for coordinates inside the region."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return (rows - self.row) * self.width + (cols - self.col)

    def corner(self) -> tuple[int, int]:
        """Top-left processor of the region."""
        return self.row, self.col

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region(r={self.row}, c={self.col}, {self.height}x{self.width})"


def square_region_for(n: int, row: int = 0, col: int = 0) -> Region:
    """Smallest square power-of-two region with at least ``n`` cells.

    Convenience for staging areas (sample sorts, gathers) where the paper
    says "gather the elements in a square subgrid".
    """
    side = 1
    while side * side < n:
        side *= 2
    return Region(row, col, side, side)
