"""Data layouts on the processor grid.

Algorithms in the paper rely on three layouts:

* **row-major** — the conventional layout; sorted outputs are delivered in
  row-major order (Section V).
* **Z-order** — inputs to the energy-optimal scan, and the intermediate order
  of the 2D merge recursion (Sections III-V).
* **square + mirrored-L** (Fig. 3) — inside the 2D merge, the larger of the
  two sorted arrays occupies a square subgrid at the region's corner and the
  other fills the remaining cells in row-major order, forming a mirrored "L".

All functions return coordinate arrays; placing or moving values to them is
the caller's job (so the message costs are charged where they belong).
"""

from __future__ import annotations

import math

import numpy as np

from .geometry import Region
from .zorder import zorder_coords

__all__ = [
    "rowmajor_layout",
    "zorder_layout",
    "square_plus_l_layout",
    "permutation_to_rowmajor",
]


def rowmajor_layout(region: Region, n: int) -> tuple[np.ndarray, np.ndarray]:
    """First ``n`` cells of ``region`` in row-major order."""
    return region.rowmajor_coords(n)


def zorder_layout(region: Region, n: int) -> tuple[np.ndarray, np.ndarray]:
    """First ``n`` cells of ``region`` along the (generalized) Z-order curve."""
    return zorder_coords(region, n)


def square_plus_l_layout(
    region: Region, n_square: int, n_rest: int
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fig. 3 layout: a square block at the corner plus a mirrored-L fill.

    The first ``n_square`` elements go into the smallest square subgrid at the
    region's top-left corner that holds them (row-major inside the square);
    the next ``n_rest`` elements fill the remaining cells of the region in
    row-major order, skipping the square.  Returns the two coordinate sets.
    """
    if n_square + n_rest > region.size:
        raise ValueError(
            f"{n_square}+{n_rest} elements do not fit region of size {region.size}"
        )
    side = math.isqrt(max(n_square - 1, 0)) + 1 if n_square else 0
    side = min(side, region.height, region.width)
    while side * side < n_square:  # region too narrow for a square: widen rows
        raise ValueError(f"square of {n_square} elements does not fit {region}")
    sq = Region(region.row, region.col, side, side)
    sq_rows, sq_cols = sq.rowmajor_coords(n_square)

    rest_rows_list = []
    rest_cols_list = []
    remaining = n_rest
    # Row-major over the region, skipping cells covered by the square.
    for r in range(region.row, region.row_end):
        if remaining <= 0:
            break
        start_col = region.col + (side if r < region.row + side else 0)
        width = region.col_end - start_col
        if width <= 0:
            continue
        take = min(remaining, width)
        rest_rows_list.append(np.full(take, r, dtype=np.int64))
        rest_cols_list.append(start_col + np.arange(take, dtype=np.int64))
        remaining -= take
    if remaining > 0:
        raise ValueError("mirrored-L fill ran out of cells")
    rest_rows = (
        np.concatenate(rest_rows_list) if rest_rows_list else np.empty(0, dtype=np.int64)
    )
    rest_cols = (
        np.concatenate(rest_cols_list) if rest_cols_list else np.empty(0, dtype=np.int64)
    )
    return (sq_rows, sq_cols), (rest_rows, rest_cols)


def permutation_to_rowmajor(region: Region, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Destination coordinates for the Z-order -> row-major permutation.

    Element at Z-position ``i`` must move to row-major position ``i``
    (final step of the 2D merge, Fig. 3d).
    """
    return region.rowmajor_coords(n)
