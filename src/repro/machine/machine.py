"""The Spatial Computer Model simulator.

:class:`SpatialMachine` executes algorithms on a conceptually unbounded 2D grid
of processors and *measures* energy, depth, and distance exactly as defined by
the model (see :mod:`repro.machine.metrics`).

Algorithms manipulate :class:`TrackedArray` objects: batches of values living
at explicit grid coordinates, carrying per-value ``(depth, distance)``
metadata as NumPy arrays.  Every bulk operation (a level of a recursion, a
stage of a sorting network) is a single vectorized call, following the
HPC-Python guidance of batching inner loops.

The two primitive operations are:

* :meth:`SpatialMachine.send` — move a batch of values to new coordinates.
  Each moved value is one message: energy increases by its Manhattan distance,
  its depth by one, its chain distance by the wire length.  Zero-length moves
  are free (a processor "sending" to itself performs no communication).
* :meth:`TrackedArray.combined_with` / :func:`combine` — compute a new value
  locally from co-located inputs; metadata is the elementwise maximum.

Control dependencies (e.g. "iteration t+1 may only start once the broadcast
decision of iteration t arrived") are threaded with
:meth:`TrackedArray.depending_on`, so the measured depth reflects the true
dependency structure of iterative algorithms.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .geometry import Region, manhattan_arrays
from .metrics import META_DTYPE, CostReport, MachineStats, combine_meta
from .tracer import Tracer
from . import zorder as zo

__all__ = ["SpatialMachine", "TrackedArray", "combine", "concat_tracked"]


class TrackedArray:
    """A batch of values on the grid with per-value cost metadata.

    Attributes
    ----------
    payload:
        ``(n, ...)`` array of values; the first axis is the element axis.
    rows, cols:
        ``(n,)`` int64 coordinates of each value's processor.
    depth, dist:
        ``(n,)`` int64 per-value message-chain depth and chain distance.
    """

    __slots__ = ("machine", "payload", "rows", "cols", "depth", "dist")

    def __init__(
        self,
        machine: "SpatialMachine",
        payload: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        depth: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        n = len(payload)
        if not (len(rows) == len(cols) == len(depth) == len(dist) == n):
            raise ValueError("TrackedArray fields must have equal length")
        self.machine = machine
        self.payload = payload
        self.rows = rows
        self.cols = cols
        self.depth = depth
        self.dist = dist

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.payload)

    def __getitem__(self, idx) -> "TrackedArray":
        """Subset by mask / fancy index / slice (no communication)."""
        return TrackedArray(
            self.machine,
            self.payload[idx],
            self.rows[idx],
            self.cols[idx],
            self.depth[idx],
            self.dist[idx],
        )

    def copy(self) -> "TrackedArray":
        return TrackedArray(
            self.machine,
            self.payload.copy(),
            self.rows.copy(),
            self.cols.copy(),
            self.depth.copy(),
            self.dist.copy(),
        )

    # ------------------------------------------------------------------
    # local (free) operations
    # ------------------------------------------------------------------
    def with_payload(self, payload: np.ndarray) -> "TrackedArray":
        """Locally recompute the payload (free; metadata unchanged)."""
        if len(payload) != len(self):
            raise ValueError("payload length mismatch")
        return TrackedArray(self.machine, payload, self.rows, self.cols, self.depth, self.dist)

    def combined_with(
        self, *others: "TrackedArray", payload: np.ndarray
    ) -> "TrackedArray":
        """New value computed at this value's cell from co-located inputs."""
        for o in others:
            if len(o) != len(self):
                raise ValueError("combined_with requires equal-length operands")
        depth, dist = combine_meta(
            [self.depth, *(o.depth for o in others)],
            [self.dist, *(o.dist for o in others)],
        )
        out = TrackedArray(self.machine, payload, self.rows, self.cols, depth, dist)
        self.machine.stats.observe(out.depth, out.dist)
        return out

    def depending_on(self, control: "TrackedArray") -> "TrackedArray":
        """Add a control dependency on a co-located value (or scalar value).

        The controlling value must already be present at this cell (it was
        broadcast or sent here), so no message is charged; depth/distance are
        the elementwise max of data and control metadata.
        """
        cd = control.depth if len(control) != 1 else control.depth[0]
        cs = control.dist if len(control) != 1 else control.dist[0]
        return TrackedArray(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, cd),
            np.maximum(self.dist, cs),
        )

    def depending_on_meta(self, depth: int, dist: int) -> "TrackedArray":
        """Like :meth:`depending_on` with raw scalar metadata."""
        return TrackedArray(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, META_DTYPE(depth)),
            np.maximum(self.dist, META_DTYPE(dist)),
        )

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def sent_to(self, rows: np.ndarray, cols: np.ndarray) -> "TrackedArray":
        """Send each value to new coordinates (one message per moved value)."""
        return self.machine.send(self, rows, cols)

    # ------------------------------------------------------------------
    def max_depth(self) -> int:
        return int(self.depth.max()) if len(self) else 0

    def max_dist(self) -> int:
        return int(self.dist.max()) if len(self) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrackedArray(n={len(self)}, depth<= {self.max_depth()}, "
            f"dist<= {self.max_dist()})"
        )


def combine(
    arrays: Sequence[TrackedArray], func: Callable[..., np.ndarray]
) -> TrackedArray:
    """Compute ``func(*payloads)`` locally across co-located equal-length arrays."""
    if not arrays:
        raise ValueError("combine needs at least one operand")
    payload = func(*(a.payload for a in arrays))
    return arrays[0].combined_with(*arrays[1:], payload=payload)


def concat_tracked(parts: Sequence[TrackedArray]) -> TrackedArray:
    """Concatenate co-owned tracked arrays (bookkeeping only, no messages)."""
    parts = [p for p in parts if len(p)]
    if not parts:
        raise ValueError("concat_tracked needs at least one non-empty part")
    machine = parts[0].machine
    return TrackedArray(
        machine,
        np.concatenate([p.payload for p in parts]),
        np.concatenate([p.rows for p in parts]),
        np.concatenate([p.cols for p in parts]),
        np.concatenate([p.depth for p in parts]),
        np.concatenate([p.dist for p in parts]),
    )


class SpatialMachine:
    """An unbounded 2D grid of constant-memory processors with cost metering.

    Parameters
    ----------
    trace:
        Record every message batch in :attr:`tracer` (for small-n tests,
        memory audits and figure generation).  Off by default: tracing large
        runs is memory-hungry.
    """

    def __init__(self, trace: bool = False) -> None:
        self.stats = MachineStats()
        self.tracer: Tracer | None = Tracer() if trace else None

    # ------------------------------------------------------------------
    # placing inputs
    # ------------------------------------------------------------------
    def place(
        self, payload: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> TrackedArray:
        """Place input values on the grid (free: inputs start in memory)."""
        payload = np.asarray(payload)
        n = len(payload)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        zeros = np.zeros(n, dtype=META_DTYPE)
        return TrackedArray(self, payload, rows, cols, zeros, zeros.copy())

    def place_rowmajor(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` in row-major order."""
        rows, cols = region.rowmajor_coords(len(payload))
        return self.place(payload, rows, cols)

    def place_zorder(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` along the Z-order curve."""
        rows, cols = zo.zorder_coords(region, len(payload))
        return self.place(payload, rows, cols)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, ta: TrackedArray, rows: np.ndarray, cols: np.ndarray) -> TrackedArray:
        """Deliver each value of ``ta`` to new coordinates.

        Moving a value across Manhattan distance ``d > 0`` is one message:
        ``energy += d``, value depth ``+= 1`` and chain distance ``+= d``.
        Values whose destination equals their source do not communicate.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) != len(ta) or len(cols) != len(ta):
            raise ValueError("destination arrays must match value count")
        d = manhattan_arrays(ta.rows, ta.cols, rows, cols)
        moved = d > 0
        self.stats.energy += int(d.sum())
        self.stats.messages += int(moved.sum())
        self.stats.rounds += 1
        if self.tracer is not None:
            self.tracer.record(ta.rows, ta.cols, rows, cols, self.stats.rounds)
        out = TrackedArray(
            self,
            ta.payload,
            rows,
            cols,
            ta.depth + moved,
            ta.dist + d,
        )
        self.stats.observe(out.depth, out.dist)
        return out

    def relay(
        self,
        src: tuple[int, int],
        stop_rows: np.ndarray,
        stop_cols: np.ndarray,
        depth0: int = 0,
        dist0: int = 0,
    ) -> tuple[int, int]:
        """Charge a *sequential* relayed message chain src -> stop_1 -> ... -> stop_t.

        Models walk-style access patterns (binary searches whose successive
        probes get geometrically closer): the query travels from stop to stop,
        each hop one message, each hop depending on the previous one.  Returns
        the ``(depth, dist)`` metadata of the value available at the final
        stop.
        """
        stop_rows = np.asarray(stop_rows, dtype=np.int64)
        stop_cols = np.asarray(stop_cols, dtype=np.int64)
        chain_r = np.concatenate([[src[0]], stop_rows])
        chain_c = np.concatenate([[src[1]], stop_cols])
        d = manhattan_arrays(chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:])
        nz = d > 0
        self.stats.energy += int(d.sum())
        self.stats.messages += int(nz.sum())
        self.stats.rounds += 1
        if self.tracer is not None:
            self.tracer.record(
                chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:], self.stats.rounds
            )
        depth = depth0 + int(nz.sum())
        dist = dist0 + int(d.sum())
        self.stats.max_depth = max(self.stats.max_depth, depth)
        self.stats.max_distance = max(self.stats.max_distance, dist)
        return depth, dist

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineStats:
        return self.stats.snapshot()

    def report(self, before: MachineStats | None = None) -> CostReport:
        if before is None:
            before = MachineStats()
        return self.stats.delta(before)

    def measure(self) -> "_Measurement":
        """Context manager capturing the cost delta of a code block::

            with machine.measure() as cost:
                scan(machine, data, region)
            print(cost.energy, cost.messages)
        """
        return _Measurement(self)


class _Measurement:
    """Mutable cost record filled in when its ``with`` block exits."""

    def __init__(self, machine: "SpatialMachine") -> None:
        self._machine = machine
        self.energy = 0
        self.messages = 0
        self.depth = 0
        self.distance = 0

    def __enter__(self) -> "_Measurement":
        self._before = self._machine.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        rep = self._machine.stats.delta(self._before)
        self.energy = rep.energy
        self.messages = rep.messages
        self.depth = rep.depth
        self.distance = rep.distance
