"""The Spatial Computer Model simulator.

:class:`SpatialMachine` executes algorithms on a conceptually unbounded 2D grid
of processors and *measures* energy, depth, and distance exactly as defined by
the model (see :mod:`repro.machine.metrics`).

Algorithms manipulate :class:`TrackedArray` objects: batches of values living
at explicit grid coordinates, carrying per-value ``(depth, distance)``
metadata as NumPy arrays.  Every bulk operation (a level of a recursion, a
stage of a sorting network) is a single vectorized call, following the
HPC-Python guidance of batching inner loops.

The two primitive operations are:

* :meth:`SpatialMachine.send` — move a batch of values to new coordinates.
  Each moved value is one message: energy increases by its Manhattan distance,
  its depth by one, its chain distance by the wire length.  Zero-length moves
  are free (a processor "sending" to itself performs no communication).
* :meth:`TrackedArray.combined_with` / :func:`combine` — compute a new value
  locally from co-located inputs; metadata is the elementwise maximum.

Control dependencies (e.g. "iteration t+1 may only start once the broadcast
decision of iteration t arrived") are threaded with
:meth:`TrackedArray.depending_on`, so the measured depth reflects the true
dependency structure of iterative algorithms.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .geometry import Region, manhattan_arrays
from .metrics import META_DTYPE, CostReport, CostTree, MachineStats, combine_meta
from .tracer import Tracer
from . import zorder as zo

__all__ = ["SpatialMachine", "TrackedArray", "combine", "concat_tracked"]


class TrackedArray:
    """A batch of values on the grid with per-value cost metadata.

    Attributes
    ----------
    payload:
        ``(n, ...)`` array of values; the first axis is the element axis.
    rows, cols:
        ``(n,)`` int64 coordinates of each value's processor.
    depth, dist:
        ``(n,)`` int64 per-value message-chain depth and chain distance.
    """

    __slots__ = ("machine", "payload", "rows", "cols", "depth", "dist")

    def __init__(
        self,
        machine: "SpatialMachine",
        payload: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        depth: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        n = len(payload)
        if not (len(rows) == len(cols) == len(depth) == len(dist) == n):
            raise ValueError("TrackedArray fields must have equal length")
        self.machine = machine
        self.payload = payload
        self.rows = rows
        self.cols = cols
        self.depth = depth
        self.dist = dist

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.payload)

    def __getitem__(self, idx) -> "TrackedArray":
        """Subset by mask / fancy index / slice (no communication)."""
        return TrackedArray(
            self.machine,
            self.payload[idx],
            self.rows[idx],
            self.cols[idx],
            self.depth[idx],
            self.dist[idx],
        )

    def copy(self) -> "TrackedArray":
        return TrackedArray(
            self.machine,
            self.payload.copy(),
            self.rows.copy(),
            self.cols.copy(),
            self.depth.copy(),
            self.dist.copy(),
        )

    # ------------------------------------------------------------------
    # local (free) operations
    # ------------------------------------------------------------------
    def with_payload(self, payload: np.ndarray) -> "TrackedArray":
        """Locally recompute the payload (free; metadata unchanged)."""
        if len(payload) != len(self):
            raise ValueError("payload length mismatch")
        return TrackedArray(self.machine, payload, self.rows, self.cols, self.depth, self.dist)

    def combined_with(
        self, *others: "TrackedArray", payload: np.ndarray
    ) -> "TrackedArray":
        """New value computed at this value's cell from co-located inputs."""
        for o in others:
            if len(o) != len(self):
                raise ValueError("combined_with requires equal-length operands")
        depth, dist = combine_meta(
            [self.depth, *(o.depth for o in others)],
            [self.dist, *(o.dist for o in others)],
        )
        out = TrackedArray(self.machine, payload, self.rows, self.cols, depth, dist)
        self.machine.observe(out.depth, out.dist)
        return out

    def depending_on(self, control: "TrackedArray") -> "TrackedArray":
        """Add a control dependency on a co-located value (or scalar value).

        The controlling value must already be present at this cell (it was
        broadcast or sent here), so no message is charged; depth/distance are
        the elementwise max of data and control metadata.
        """
        cd = control.depth if len(control) != 1 else control.depth[0]
        cs = control.dist if len(control) != 1 else control.dist[0]
        return TrackedArray(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, cd),
            np.maximum(self.dist, cs),
        )

    def depending_on_meta(self, depth: int, dist: int) -> "TrackedArray":
        """Like :meth:`depending_on` with raw scalar metadata."""
        return TrackedArray(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, META_DTYPE(depth)),
            np.maximum(self.dist, META_DTYPE(dist)),
        )

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def sent_to(self, rows: np.ndarray, cols: np.ndarray) -> "TrackedArray":
        """Send each value to new coordinates (one message per moved value)."""
        return self.machine.send(self, rows, cols)

    # ------------------------------------------------------------------
    def max_depth(self) -> int:
        return int(self.depth.max()) if len(self) else 0

    def max_dist(self) -> int:
        return int(self.dist.max()) if len(self) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrackedArray(n={len(self)}, depth<= {self.max_depth()}, "
            f"dist<= {self.max_dist()})"
        )


def combine(
    arrays: Sequence[TrackedArray], func: Callable[..., np.ndarray]
) -> TrackedArray:
    """Compute ``func(*payloads)`` locally across co-located equal-length arrays."""
    if not arrays:
        raise ValueError("combine needs at least one operand")
    payload = func(*(a.payload for a in arrays))
    return arrays[0].combined_with(*arrays[1:], payload=payload)


def concat_tracked(parts: Sequence[TrackedArray]) -> TrackedArray:
    """Concatenate co-owned tracked arrays (bookkeeping only, no messages)."""
    parts = [p for p in parts if len(p)]
    if not parts:
        raise ValueError("concat_tracked needs at least one non-empty part")
    machine = parts[0].machine
    return TrackedArray(
        machine,
        np.concatenate([p.payload for p in parts]),
        np.concatenate([p.rows for p in parts]),
        np.concatenate([p.cols for p in parts]),
        np.concatenate([p.depth for p in parts]),
        np.concatenate([p.dist for p in parts]),
    )


class _PhaseSpan:
    """Context manager pushing one phase-tree node (see ``SpatialMachine.phase``)."""

    __slots__ = ("_machine", "_name", "_prev")

    def __init__(self, machine: "SpatialMachine", name: str) -> None:
        self._machine = machine
        self._name = name

    def __enter__(self):
        m = self._machine
        self._prev = m._phase_node
        m._phase_node = self._prev.child(self._name)
        return m._phase_node

    def __exit__(self, exc_type, exc, tb) -> None:
        self._machine._phase_node = self._prev


class _NullSpan:
    """No-op span used when phase accounting is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpatialMachine:
    """An unbounded 2D grid of constant-memory processors with cost metering.

    Parameters
    ----------
    trace:
        Record every message batch in :attr:`tracer` (for small-n tests,
        memory audits and figure generation).  Off by default: tracing large
        runs is memory-hungry.
    phases:
        Attribute charges to the active :meth:`phase` span in
        :attr:`cost_tree` (on by default; the per-send cost is a handful of
        integer additions).  Disable for hot-path micro-benchmarks.
    """

    def __init__(self, trace: bool = False, phases: bool = True) -> None:
        self.stats = MachineStats()
        self.tracer: Tracer | None = Tracer() if trace else None
        self.cost_tree = CostTree()
        self._phase_node = self.cost_tree.root if phases else None

    # ------------------------------------------------------------------
    # phase-scoped accounting
    # ------------------------------------------------------------------
    def phase(self, name: str):
        """Scope subsequent charges to phase ``name`` (nestable)::

            with machine.phase("mergesort2d"):
                ...                      # charges land on "mergesort2d"
                with machine.phase("merge2d"):
                    ...                  # ... on "mergesort2d/merge2d"

        Re-entering a name under the same parent accumulates into the same
        :class:`~repro.machine.metrics.PhaseNode` (recursive algorithms fold
        onto one path).  With ``phases=False`` this is a free no-op.
        """
        if self._phase_node is None:
            return _NULL_SPAN
        return _PhaseSpan(self, name)

    @property
    def current_phase(self) -> str:
        """The active phase path ("" at top level or with phases disabled)."""
        return self._phase_node.path if self._phase_node is not None else ""

    def observe(self, depth: np.ndarray, dist: np.ndarray) -> None:
        """Fold per-value metadata maxima into the stats and active phase."""
        if not depth.size:
            return
        dmax = int(depth.max())
        smax = int(dist.max())
        st = self.stats
        if dmax > st.max_depth:
            st.max_depth = dmax
        if smax > st.max_distance:
            st.max_distance = smax
        node = self._phase_node
        if node is not None:
            if dmax > node.max_depth:
                node.max_depth = dmax
            if smax > node.max_distance:
                node.max_distance = smax

    # ------------------------------------------------------------------
    # placing inputs
    # ------------------------------------------------------------------
    def place(
        self, payload: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> TrackedArray:
        """Place input values on the grid (free: inputs start in memory)."""
        payload = np.asarray(payload)
        n = len(payload)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        zeros = np.zeros(n, dtype=META_DTYPE)
        return TrackedArray(self, payload, rows, cols, zeros, zeros.copy())

    def place_rowmajor(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` in row-major order."""
        rows, cols = region.rowmajor_coords(len(payload))
        return self.place(payload, rows, cols)

    def place_zorder(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` along the Z-order curve."""
        rows, cols = zo.zorder_coords(region, len(payload))
        return self.place(payload, rows, cols)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, ta: TrackedArray, rows: np.ndarray, cols: np.ndarray) -> TrackedArray:
        """Deliver each value of ``ta`` to new coordinates.

        Moving a value across Manhattan distance ``d > 0`` is one message:
        ``energy += d``, value depth ``+= 1`` and chain distance ``+= d``.
        Values whose destination equals their source do not communicate.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) != len(ta) or len(cols) != len(ta):
            raise ValueError("destination arrays must match value count")
        d = manhattan_arrays(ta.rows, ta.cols, rows, cols)
        moved = d > 0
        energy = int(d.sum())
        messages = int(moved.sum())
        self.stats.energy += energy
        self.stats.messages += messages
        if messages:
            # an all-self-send batch performs no communication: not a round
            self.stats.rounds += 1
        node = self._phase_node
        if node is not None:
            node.energy += energy
            node.messages += messages
            if messages:
                node.sends += 1
        if self.tracer is not None:
            self.tracer.record(
                ta.rows, ta.cols, rows, cols, self.stats.rounds,
                phase=self.current_phase,
            )
        out = TrackedArray(
            self,
            ta.payload,
            rows,
            cols,
            ta.depth + moved,
            ta.dist + d,
        )
        self.observe(out.depth, out.dist)
        return out

    def relay(
        self,
        src: tuple[int, int],
        stop_rows: np.ndarray,
        stop_cols: np.ndarray,
        depth0: int = 0,
        dist0: int = 0,
    ) -> tuple[int, int]:
        """Charge a *sequential* relayed message chain src -> stop_1 -> ... -> stop_t.

        Models walk-style access patterns (binary searches whose successive
        probes get geometrically closer): the query travels from stop to stop,
        each hop one message, each hop depending on the previous one.  Returns
        the ``(depth, dist)`` metadata of the value available at the final
        stop.
        """
        stop_rows = np.asarray(stop_rows, dtype=np.int64)
        stop_cols = np.asarray(stop_cols, dtype=np.int64)
        chain_r = np.concatenate([[src[0]], stop_rows])
        chain_c = np.concatenate([[src[1]], stop_cols])
        d = manhattan_arrays(chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:])
        nz = d > 0
        energy = int(d.sum())
        messages = int(nz.sum())
        self.stats.energy += energy
        self.stats.messages += messages
        if messages:
            self.stats.rounds += 1
        node = self._phase_node
        if node is not None:
            node.energy += energy
            node.messages += messages
            if messages:
                node.sends += 1
        if self.tracer is not None:
            self.tracer.record(
                chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:],
                self.stats.rounds, phase=self.current_phase, kind="relay",
            )
        depth = depth0 + messages
        dist = dist0 + energy
        self.stats.max_depth = max(self.stats.max_depth, depth)
        self.stats.max_distance = max(self.stats.max_distance, dist)
        if node is not None:
            node.max_depth = max(node.max_depth, depth)
            node.max_distance = max(node.max_distance, dist)
        return depth, dist

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineStats:
        return self.stats.snapshot()

    def report(self, before: MachineStats | None = None) -> CostReport:
        if before is None:
            before = MachineStats()
        return self.stats.delta(before)

    def measure(self) -> "_Measurement":
        """Context manager capturing the cost delta of a code block::

            with machine.measure() as cost:
                scan(machine, data, region)
            print(cost.energy, cost.messages)
            print(cost.per_phase.render())   # phase-scoped breakdown

        ``cost.per_phase`` is the :class:`CostTree` delta over the block
        (phases whose counters did not change show zero self cost).
        """
        return _Measurement(self)


class _Measurement:
    """Mutable cost record filled in when its ``with`` block exits."""

    def __init__(self, machine: "SpatialMachine") -> None:
        self._machine = machine
        self.energy = 0
        self.messages = 0
        self.depth = 0
        self.distance = 0
        self.per_phase: CostTree = CostTree()

    def __enter__(self) -> "_Measurement":
        self._before = self._machine.snapshot()
        self._tree_before = self._machine.cost_tree.clone()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        rep = self._machine.stats.delta(self._before)
        self.energy = rep.energy
        self.messages = rep.messages
        self.depth = rep.depth
        self.distance = rep.distance
        self.per_phase = self._machine.cost_tree.delta(self._tree_before)
