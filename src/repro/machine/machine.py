"""The Spatial Computer Model simulator.

:class:`SpatialMachine` executes algorithms on a conceptually unbounded 2D grid
of processors and *measures* energy, depth, and distance exactly as defined by
the model (see :mod:`repro.machine.metrics`).

Algorithms manipulate :class:`TrackedArray` objects: batches of values living
at explicit grid coordinates, carrying per-value ``(depth, distance)``
metadata as NumPy arrays.  Every bulk operation (a level of a recursion, a
stage of a sorting network) is a single vectorized call, following the
HPC-Python guidance of batching inner loops.

The two primitive operations are:

* :meth:`SpatialMachine.send` — move a batch of values to new coordinates.
  Each moved value is one message: energy increases by its Manhattan distance,
  its depth by one, its chain distance by the wire length.  Zero-length moves
  are free (a processor "sending" to itself performs no communication).
* :meth:`TrackedArray.combined_with` / :func:`combine` — compute a new value
  locally from co-located inputs; metadata is the elementwise maximum.

Control dependencies (e.g. "iteration t+1 may only start once the broadcast
decision of iteration t arrived") are threaded with
:meth:`TrackedArray.depending_on`, so the measured depth reflects the true
dependency structure of iterative algorithms.

Two interchangeable execution paths implement the charging rules
(``docs/PERFORMANCE.md``):

* the **fast path** (default) runs single-pass vectorized kernels and the
  batched :meth:`SpatialMachine.relay_many` / :meth:`SpatialMachine.send_shifts`
  APIs;
* the **reference path** (:class:`ReferenceMachine`, or ``REPRO_REFERENCE=1``)
  keeps the original per-call implementations as the conformance oracle.

The two are required to agree *exactly* — bit-identical payloads, equal
counters, equal cost trees, equal recovery stats, identical rng streams under
a seeded :class:`~repro.machine.faults.FaultPlan`.  ``repro conformance`` and
``tests/test_fast_conformance.py`` enforce the contract.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

import numpy as np

from .faults import (
    RECOVERY_PHASE,
    FaultPlan,
    ModelViolation,
    RecoveryStats,
    backoff_ticks,
    detour_extras,
    spare_extras,
    sample_failures,
)
from .fastpath import quadrant_broadcast_fast, quadrant_reduce_fast, relay_many_fast
from .geometry import Region, manhattan_arrays
from .metrics import META_DTYPE, CostReport, CostTree, MachineStats, combine_meta
from .profiler import SpatialProfiler
from .tracer import Tracer
from . import zorder as zo

__all__ = [
    "SpatialMachine",
    "ReferenceMachine",
    "TrackedArray",
    "combine",
    "concat_tracked",
    "DEFAULT_WORD_BUDGET",
]

#: default strict-mode cap on messages one processor may receive in a single
#: batched round.  The model allows "O(1) words"; every primitive in this
#: repo has per-round fan-in <= 2, so 8 leaves slack for composed algorithms
#: while still catching gather-to-one-cell bugs immediately.
DEFAULT_WORD_BUDGET = 8


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class TrackedArray:
    """A batch of values on the grid with per-value cost metadata.

    Attributes
    ----------
    payload:
        ``(n, ...)`` array of values; the first axis is the element axis.
    rows, cols:
        ``(n,)`` int64 coordinates of each value's processor.
    depth, dist:
        ``(n,)`` int64 per-value message-chain depth and chain distance.
    """

    __slots__ = ("machine", "payload", "rows", "cols", "depth", "dist")

    def __init__(
        self,
        machine: "SpatialMachine",
        payload: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        depth: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        n = len(payload)
        if not (len(rows) == len(cols) == len(depth) == len(dist) == n):
            raise ValueError("TrackedArray fields must have equal length")
        self.machine = machine
        self.payload = payload
        self.rows = rows
        self.cols = cols
        self.depth = depth
        self.dist = dist

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.payload)

    def __getitem__(self, idx) -> "TrackedArray":
        """Subset by mask / fancy index / slice (no communication)."""
        return _tracked(
            self.machine,
            self.payload[idx],
            self.rows[idx],
            self.cols[idx],
            self.depth[idx],
            self.dist[idx],
        )

    def copy(self) -> "TrackedArray":
        return _tracked(
            self.machine,
            self.payload.copy(),
            self.rows.copy(),
            self.cols.copy(),
            self.depth.copy(),
            self.dist.copy(),
        )

    # ------------------------------------------------------------------
    # local (free) operations
    # ------------------------------------------------------------------
    def with_payload(self, payload: np.ndarray) -> "TrackedArray":
        """Locally recompute the payload (free; metadata unchanged)."""
        if len(payload) != len(self):
            raise ValueError("payload length mismatch")
        return _tracked(self.machine, payload, self.rows, self.cols, self.depth, self.dist)

    def combined_with(
        self, *others: "TrackedArray", payload: np.ndarray
    ) -> "TrackedArray":
        """New value computed at this value's cell from co-located inputs."""
        for o in others:
            if len(o) != len(self):
                raise ValueError("combined_with requires equal-length operands")
        depth, dist = combine_meta(
            [self.depth, *(o.depth for o in others)],
            [self.dist, *(o.dist for o in others)],
        )
        out = _tracked(self.machine, payload, self.rows, self.cols, depth, dist)
        self.machine.observe(out.depth, out.dist)
        return out

    def depending_on(self, control: "TrackedArray") -> "TrackedArray":
        """Add a control dependency on a co-located value (or scalar value).

        The controlling value must already be present at this cell (it was
        broadcast or sent here), so no message is charged; depth/distance are
        the elementwise max of data and control metadata.
        """
        cd = control.depth if len(control) != 1 else control.depth[0]
        cs = control.dist if len(control) != 1 else control.dist[0]
        return _tracked(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, cd),
            np.maximum(self.dist, cs),
        )

    def depending_on_meta(self, depth: int, dist: int) -> "TrackedArray":
        """Like :meth:`depending_on` with raw scalar metadata."""
        return _tracked(
            self.machine,
            self.payload,
            self.rows,
            self.cols,
            np.maximum(self.depth, META_DTYPE(depth)),
            np.maximum(self.dist, META_DTYPE(dist)),
        )

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def sent_to(self, rows: np.ndarray, cols: np.ndarray) -> "TrackedArray":
        """Send each value to new coordinates (one message per moved value)."""
        return self.machine.send(self, rows, cols)

    # ------------------------------------------------------------------
    def max_depth(self) -> int:
        return int(self.depth.max()) if len(self) else 0

    def max_dist(self) -> int:
        return int(self.dist.max()) if len(self) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrackedArray(n={len(self)}, depth<= {self.max_depth()}, "
            f"dist<= {self.max_dist()})"
        )


def _tracked(machine, payload, rows, cols, depth, dist) -> TrackedArray:
    """Build a :class:`TrackedArray` without ``__init__``'s length validation.

    Hot-path constructor for internal call sites whose five field arrays are
    equal-length by construction (slices of a validated array, outputs of
    elementwise kernels).  External constructors keep the checked path.
    """
    ta = TrackedArray.__new__(TrackedArray)
    ta.machine = machine
    ta.payload = payload
    ta.rows = rows
    ta.cols = cols
    ta.depth = depth
    ta.dist = dist
    return ta


def combine(
    arrays: Sequence[TrackedArray], func: Callable[..., np.ndarray]
) -> TrackedArray:
    """Compute ``func(*payloads)`` locally across co-located equal-length arrays."""
    if not arrays:
        raise ValueError("combine needs at least one operand")
    payload = func(*(a.payload for a in arrays))
    return arrays[0].combined_with(*arrays[1:], payload=payload)


def concat_tracked(parts: Sequence[TrackedArray]) -> TrackedArray:
    """Concatenate co-owned tracked arrays (bookkeeping only, no messages)."""
    parts = [p for p in parts if len(p)]
    if not parts:
        raise ValueError("concat_tracked needs at least one non-empty part")
    machine = parts[0].machine
    return _tracked(
        machine,
        np.concatenate([p.payload for p in parts]),
        np.concatenate([p.rows for p in parts]),
        np.concatenate([p.cols for p in parts]),
        np.concatenate([p.depth for p in parts]),
        np.concatenate([p.dist for p in parts]),
    )


class _PhaseSpan:
    """Context manager pushing one phase-tree node (see ``SpatialMachine.phase``)."""

    __slots__ = ("_machine", "_name", "_prev")

    def __init__(self, machine: "SpatialMachine", name: str) -> None:
        self._machine = machine
        self._name = name

    def __enter__(self):
        m = self._machine
        self._prev = m._phase_node
        m._phase_node = self._prev.child(self._name)
        if m.profiler is not None:
            m.profiler.phase_enter(m._phase_node.path)
        return m._phase_node

    def __exit__(self, exc_type, exc, tb) -> None:
        m = self._machine
        if m.profiler is not None:
            m.profiler.phase_exit(m._phase_node.path)
        m._phase_node = self._prev


class _NullSpan:
    """No-op span used when phase accounting is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpatialMachine:
    """An unbounded 2D grid of constant-memory processors with cost metering.

    Parameters
    ----------
    trace:
        Record every message batch in :attr:`tracer` (for small-n tests,
        memory audits and figure generation).  Off by default: tracing large
        runs is memory-hungry.  Pass a preconfigured
        :class:`~repro.machine.tracer.Tracer` (e.g. a streaming one with
        ``retain=False`` and a sink) instead of ``True`` to control the
        memory footprint.
    profile:
        Attach a :class:`~repro.machine.profiler.SpatialProfiler`: per-cell
        traffic/energy grids, per-link XY-route utilization, and the
        depth/distance critical-path witnesses (``docs/PROFILING.md``).
        ``True`` creates a default profiler; a preconfigured
        ``SpatialProfiler`` is used as-is; the default ``None`` consults the
        ``REPRO_PROFILE`` environment flag (so ``repro bench run --profile``
        can profile suite-owned machines).  Costs are unchanged either way —
        the profiler only observes.
    phases:
        Attribute charges to the active :meth:`phase` span in
        :attr:`cost_tree` (on by default; the per-send cost is a handful of
        integer additions).  Disable for hot-path micro-benchmarks.
    faults:
        A :class:`~repro.machine.faults.FaultPlan` to execute under: dead
        cells are spared/detoured around and dropped or corrupted messages
        are retransmitted, with every recovery charge landing in the flat
        counters *and* a dedicated top-level ``recovery`` phase of
        :attr:`cost_tree`.  Results stay bit-identical; only costs inflate.
        ``None`` (the default) is the perfect fabric.
    strict:
        Enforce the model's contract online: per-round fan-in above
        ``word_budget`` raises :class:`~repro.machine.faults.ModelViolation`;
        non-finite/non-integral coordinates and NaN payloads entering via
        :meth:`place` raise ``ValueError`` immediately instead of silently
        corrupting the cost metrics.  Defaults to the ``REPRO_STRICT``
        environment flag, so ``REPRO_STRICT=1 pytest`` audits a whole suite.
    word_budget:
        Strict-mode cap on messages one processor may receive in one batched
        round (default :data:`DEFAULT_WORD_BUDGET`, overridable via the
        ``REPRO_WORD_BUDGET`` environment variable).
    bounds:
        Optional fabric rectangle.  In strict mode, any placement or send
        targeting a cell outside it fails fast with an actionable error.
    fast:
        Select the vectorized fast execution path (``True``, the default) or
        the per-call reference oracle (``False``; what
        :class:`ReferenceMachine` pins).  ``None`` consults the
        ``REPRO_REFERENCE`` environment flag, so a whole run — tests, bench
        sweeps, the service — can be flipped onto the oracle without code
        changes.  Both paths charge identically; the fast path is only
        allowed to be faster (``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        trace: bool | Tracer = False,
        phases: bool = True,
        faults: FaultPlan | None = None,
        strict: bool | None = None,
        word_budget: int | None = None,
        bounds: Region | None = None,
        profile: bool | SpatialProfiler | None = None,
        fast: bool | None = None,
    ) -> None:
        self.stats = MachineStats()
        if isinstance(trace, Tracer):
            self.tracer: Tracer | None = trace
        else:
            self.tracer = Tracer() if trace else None
        if profile is None:
            profile = _env_flag("REPRO_PROFILE")
        if isinstance(profile, SpatialProfiler):
            self.profiler: SpatialProfiler | None = profile
        else:
            self.profiler = SpatialProfiler() if profile else None
        self.cost_tree = CostTree()
        self._phase_node = self.cost_tree.root if phases else None
        self.faults = faults
        self.recovery = RecoveryStats()
        self.strict = _env_flag("REPRO_STRICT") if strict is None else bool(strict)
        if word_budget is None:
            word_budget = int(os.environ.get("REPRO_WORD_BUDGET", DEFAULT_WORD_BUDGET))
        if word_budget < 1:
            raise ValueError(f"word_budget must be >= 1, got {word_budget}")
        self.word_budget = word_budget
        self.bounds = bounds
        self.fast = not _env_flag("REPRO_REFERENCE") if fast is None else bool(fast)

    # ------------------------------------------------------------------
    # phase-scoped accounting
    # ------------------------------------------------------------------
    def phase(self, name: str):
        """Scope subsequent charges to phase ``name`` (nestable)::

            with machine.phase("mergesort2d"):
                ...                      # charges land on "mergesort2d"
                with machine.phase("merge2d"):
                    ...                  # ... on "mergesort2d/merge2d"

        Re-entering a name under the same parent accumulates into the same
        :class:`~repro.machine.metrics.PhaseNode` (recursive algorithms fold
        onto one path).  With ``phases=False`` this is a free no-op.
        """
        if self._phase_node is None:
            return _NULL_SPAN
        return _PhaseSpan(self, name)

    @property
    def current_phase(self) -> str:
        """The active phase path ("" at top level or with phases disabled)."""
        return self._phase_node.path if self._phase_node is not None else ""

    def observe(self, depth: np.ndarray, dist: np.ndarray) -> None:
        """Fold per-value metadata maxima into the stats and active phase."""
        if not depth.size:
            return
        dmax = int(depth.max())
        smax = int(dist.max())
        st = self.stats
        if dmax > st.max_depth:
            st.max_depth = dmax
        if smax > st.max_distance:
            st.max_distance = smax
        node = self._phase_node
        if node is not None:
            if dmax > node.max_depth:
                node.max_depth = dmax
            if smax > node.max_distance:
                node.max_distance = smax

    def observe_maxima(self, dmax: int, smax: int) -> None:
        """Scalar form of :meth:`observe` for precomputed metadata maxima."""
        st = self.stats
        if dmax > st.max_depth:
            st.max_depth = dmax
        if smax > st.max_distance:
            st.max_distance = smax
        node = self._phase_node
        if node is not None:
            if dmax > node.max_depth:
                node.max_depth = dmax
            if smax > node.max_distance:
                node.max_distance = smax

    # ------------------------------------------------------------------
    # strict-mode validation
    # ------------------------------------------------------------------
    def _coerce_coords(
        self, rows: np.ndarray, cols: np.ndarray, what: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """int64 coordinate arrays; in strict mode, fail fast on garbage.

        A NaN or fractional coordinate silently cast to int64 becomes a
        huge bogus offset that inflates every cost metric — strict mode
        turns that into an immediate, actionable ``ValueError``.
        """
        if self.strict:
            for name, arr in (("rows", rows), ("cols", cols)):
                a = np.asarray(arr)
                if a.dtype.kind == "f":
                    bad = ~np.isfinite(a)
                    if bad.any():
                        raise ValueError(
                            f"{what}: {int(bad.sum())} non-finite {name} "
                            f"coordinate(s) (first at index {int(np.argmax(bad))}); "
                            "coordinates must be finite integers"
                        )
                    frac = a != np.floor(a)
                    if frac.any():
                        raise ValueError(
                            f"{what}: {int(frac.sum())} non-integral {name} "
                            f"coordinate(s) (first at index {int(np.argmax(frac))}); "
                            "grid coordinates must be whole numbers"
                        )
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if self.strict and self.bounds is not None:
            inside = self.bounds.contains(rows, cols)
            outside = ~inside
            if outside.any():
                i = int(np.argmax(outside))
                raise ValueError(
                    f"{what}: {int(outside.sum())} coordinate(s) outside the "
                    f"fabric bounds {self.bounds} (first offender "
                    f"({int(rows[i])}, {int(cols[i])}) at index {i})"
                )
        return rows, cols

    def _check_fan_in(self, rows: np.ndarray, cols: np.ndarray, moved: np.ndarray) -> None:
        """Strict mode: one round may deliver at most ``word_budget`` words per cell."""
        if not moved.any():
            return
        dests = np.stack([rows[moved], cols[moved]], axis=1)
        cells, counts = np.unique(dests, axis=0, return_counts=True)
        worst = int(counts.max())
        if worst > self.word_budget:
            r, c = cells[int(np.argmax(counts))]
            raise ModelViolation(
                f"processor ({int(r)}, {int(c)}) receives {worst} messages in one "
                f"round, exceeding the O(1) word budget of {self.word_budget}; "
                "a constant-memory processor cannot buffer them — restructure "
                "the communication into a tree/scan, or raise word_budget if "
                "this fan-in is genuinely constant"
            )

    # ------------------------------------------------------------------
    # placing inputs
    # ------------------------------------------------------------------
    def place(
        self, payload: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> TrackedArray:
        """Place input values on the grid (free: inputs start in memory).

        Under a :class:`FaultPlan` with dead regions, values addressed to a
        dead cell are physically hosted by the cell's spare — a free
        layout-time redirection, like the sparing maps burned into
        wafer-scale parts.  The value keeps its *logical* coordinate;
        messages later sent to or from it pay the wire to the spare.
        """
        payload = np.asarray(payload)
        n = len(payload)
        rows, cols = self._coerce_coords(rows, cols, "place")
        if self.strict and payload.dtype.kind == "f":
            nan = np.isnan(payload)
            if nan.any():
                raise ValueError(
                    f"place: payload contains {int(nan.sum())} NaN value(s) "
                    f"(first at flat index {int(np.argmax(nan.ravel()))}); NaNs "
                    "poison comparisons and reductions — filter or encode them "
                    "before placing"
                )
        if self.faults is not None and self.faults.dead_regions:
            # address-transparent sparing: validate a spare exists and count
            # the redirections, but keep the logical coordinates
            _, spared = spare_extras(self.faults, rows, cols)
            self.recovery.spared += int(spared.sum())
        zeros = np.zeros(n, dtype=META_DTYPE)
        return TrackedArray(self, payload, rows, cols, zeros, zeros.copy())

    def place_rowmajor(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` in row-major order."""
        rows, cols = region.rowmajor_coords(len(payload))
        return self.place(payload, rows, cols)

    def place_zorder(self, payload: np.ndarray, region: Region) -> TrackedArray:
        """Place ``payload`` into ``region`` along the Z-order curve."""
        rows, cols = zo.zorder_coords(region, len(payload))
        return self.place(payload, rows, cols)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, ta: TrackedArray, rows: np.ndarray, cols: np.ndarray) -> TrackedArray:
        """Deliver each value of ``ta`` to new coordinates.

        Moving a value across Manhattan distance ``d > 0`` is one message:
        ``energy += d``, value depth ``+= 1`` and chain distance ``+= d``.
        Values whose destination equals their source do not communicate.

        Under a :class:`FaultPlan`, delivery is still guaranteed and payloads
        and coordinates are never altered, but faults inflate the measured
        costs: messages touching dead cells pay the wire to/from the spare
        that physically hosts the logical address, routes crossing dead
        rectangles pay a detour, and dropped/corrupted messages are resent —
        each failed attempt burns the wire energy again, deepens the value's
        chain by one message, and lengthens its chain distance by the wire.
        The extra charges are attributed to the ``recovery`` phase of
        :attr:`cost_tree` (flat totals include them too).
        """
        if self.fast:
            return self._send_fast(ta, rows, cols)
        return self._send_reference(ta, rows, cols)

    def _send_reference(
        self, ta: TrackedArray, rows: np.ndarray, cols: np.ndarray
    ) -> TrackedArray:
        """The original per-call ``send`` implementation (conformance oracle)."""
        rows, cols = self._coerce_coords(rows, cols, "send")
        if len(rows) != len(ta) or len(cols) != len(ta):
            raise ValueError("destination arrays must match value count")
        plan = self.faults
        d = manhattan_arrays(ta.rows, ta.cols, rows, cols)
        moved = d > 0
        messages = int(moved.sum())
        if self.strict and messages:
            self._check_fan_in(rows, cols, moved)

        # ---- fault recovery: sparing taxes, detours, retransmissions
        failures = None
        detour_energy = spare_energy = retry_energy = retries = 0
        d_eff = d
        if plan is not None and plan.injects_faults and messages:
            if plan.dead_regions:
                src_extra, _ = spare_extras(plan, ta.rows, ta.cols)
                dst_extra, dst_spared = spare_extras(plan, rows, cols)
                sp = src_extra + dst_extra
                sp[~moved] = 0
                spare_energy = int(sp.sum())
                if spare_energy:
                    d_eff = d_eff + sp
                    self.recovery.spared += int((dst_spared & moved).sum())
                    self.recovery.spare_energy += spare_energy
                extra = detour_extras(plan.dead_regions, ta.rows, ta.cols, rows, cols)
                extra[~moved] = 0
                detour_energy = int(extra.sum())
                if detour_energy:
                    d_eff = d_eff + extra
                    self.recovery.detoured += int((extra > 0).sum())
                    self.recovery.detour_energy += detour_energy
            if plan.failure_prob > 0.0:
                f, dropped, corrupted = sample_failures(plan, messages)
                if f.any():
                    failures = np.zeros(len(ta), dtype=META_DTYPE)
                    failures[moved] = f
                    retries = int(f.sum())
                    retry_energy = int((d_eff * failures).sum())
                    rec = self.recovery
                    rec.dropped += int(dropped.sum())
                    rec.corrupted += int(corrupted.sum())
                    rec.retries += retries
                    rec.retry_energy += retry_energy
                    rec.backoff_ticks += backoff_ticks(plan, f)
                    rec.max_attempts = max(rec.max_attempts, int(f.max()) + 1)

        energy = int(d.sum())
        self.stats.energy += energy + spare_energy + detour_energy + retry_energy
        self.stats.messages += messages + retries
        if messages:
            # an all-self-send batch performs no communication: not a round
            self.stats.rounds += 1
        node = self._phase_node
        if node is not None:
            node.energy += energy
            node.messages += messages
            if messages:
                node.sends += 1
        if self.tracer is not None:
            self.tracer.record(
                ta.rows, ta.cols, rows, cols, self.stats.rounds,
                phase=self.current_phase,
            )
            if failures is not None:
                idx = np.nonzero(failures)[0]
                idx = np.repeat(idx, failures[idx])
                self.tracer.record(
                    ta.rows[idx], ta.cols[idx], rows[idx], cols[idx],
                    self.stats.rounds, phase=self.current_phase, kind="resend",
                )
        if failures is None:
            depth = ta.depth + moved
            dist = ta.dist + d_eff
        else:
            depth = ta.depth + moved + failures
            dist = ta.dist + d_eff * (1 + failures)
        if self.profiler is not None and messages:
            self.profiler.record_send(
                ta.rows, ta.cols, rows, cols, d_eff, failures, moved,
                depth, dist, self.current_phase, "send", self.stats.rounds,
            )
        out = TrackedArray(self, ta.payload, rows, cols, depth, dist)
        self.observe(out.depth, out.dist)
        self._charge_recovery(spare_energy + detour_energy + retry_energy, retries, out)
        return out

    def _send_fast(
        self, ta: TrackedArray, rows: np.ndarray, cols: np.ndarray
    ) -> TrackedArray:
        """Single-pass vectorized ``send`` kernel.

        Counter-identical to :meth:`_send_reference` (conformance-enforced):
        same strict checks, same fault accounting, same rng draws, same
        tracer/profiler feeds — fused into one pass with in-place distance
        arithmetic and the unchecked :func:`_tracked` constructor.
        """
        rows, cols = self._coerce_coords(rows, cols, "send")
        n = len(ta)
        if len(rows) != n or len(cols) != n:
            raise ValueError("destination arrays must match value count")
        d = np.subtract(rows, ta.rows)
        np.abs(d, out=d)
        t = np.subtract(cols, ta.cols)
        np.abs(t, out=t)
        d += t
        moved = d > 0
        messages = int(np.count_nonzero(moved))
        if self.strict and messages:
            self._check_fan_in(rows, cols, moved)

        plan = self.faults
        failures = None
        detour_energy = spare_energy = retry_energy = retries = 0
        d_eff = d
        if plan is not None and plan.injects_faults and messages:
            if plan.dead_regions:
                src_extra, _ = spare_extras(plan, ta.rows, ta.cols)
                dst_extra, dst_spared = spare_extras(plan, rows, cols)
                sp = src_extra + dst_extra
                sp[~moved] = 0
                spare_energy = int(sp.sum())
                if spare_energy:
                    d_eff = d_eff + sp
                    self.recovery.spared += int((dst_spared & moved).sum())
                    self.recovery.spare_energy += spare_energy
                extra = detour_extras(plan.dead_regions, ta.rows, ta.cols, rows, cols)
                extra[~moved] = 0
                detour_energy = int(extra.sum())
                if detour_energy:
                    d_eff = d_eff + extra
                    self.recovery.detoured += int((extra > 0).sum())
                    self.recovery.detour_energy += detour_energy
            if plan.failure_prob > 0.0:
                f, dropped, corrupted = sample_failures(plan, messages)
                if f.any():
                    failures = np.zeros(n, dtype=META_DTYPE)
                    failures[moved] = f
                    retries = int(f.sum())
                    retry_energy = int((d_eff * failures).sum())
                    rec = self.recovery
                    rec.dropped += int(dropped.sum())
                    rec.corrupted += int(corrupted.sum())
                    rec.retries += retries
                    rec.retry_energy += retry_energy
                    rec.backoff_ticks += backoff_ticks(plan, f)
                    rec.max_attempts = max(rec.max_attempts, int(f.max()) + 1)

        energy = int(np.add.reduce(d))
        st = self.stats
        st.energy += energy + spare_energy + detour_energy + retry_energy
        st.messages += messages + retries
        if messages:
            st.rounds += 1
        node = self._phase_node
        if node is not None:
            node.energy += energy
            node.messages += messages
            if messages:
                node.sends += 1
        if self.tracer is not None:
            self.tracer.record(
                ta.rows, ta.cols, rows, cols, st.rounds,
                phase=self.current_phase,
            )
            if failures is not None:
                idx = np.nonzero(failures)[0]
                idx = np.repeat(idx, failures[idx])
                self.tracer.record(
                    ta.rows[idx], ta.cols[idx], rows[idx], cols[idx],
                    st.rounds, phase=self.current_phase, kind="resend",
                )
        if failures is None:
            depth = ta.depth + moved
            dist = ta.dist + d_eff
        else:
            depth = ta.depth + moved + failures
            dist = ta.dist + d_eff * (1 + failures)
        if self.profiler is not None and messages:
            self.profiler.record_send(
                ta.rows, ta.cols, rows, cols, d_eff, failures, moved,
                depth, dist, self.current_phase, "send", st.rounds,
            )
        out = _tracked(self, ta.payload, rows, cols, depth, dist)
        self.observe(depth, dist)
        if retries or spare_energy or detour_energy:
            self._charge_recovery(
                spare_energy + detour_energy + retry_energy, retries, out
            )
        return out

    def send_shift(self, ta: TrackedArray, dr: int, dc: int) -> TrackedArray:
        """Send every value by the uniform offset ``(dr, dc)``.

        Exactly ``send(ta, ta.rows + dr, ta.cols + dc)`` on every counter;
        the fast path exploits the constant wire length ``|dr| + |dc|``
        shared by all messages of the batch.
        """
        return self.send_shifts(ta, ((dr, dc),))[0]

    def send_shifts(
        self, ta: TrackedArray, offsets: Sequence[tuple[int, int]]
    ) -> list[TrackedArray]:
        """Issue one uniform-offset ``send`` per entry of ``offsets``.

        Defined as — and on the reference path literally executed as — the
        sequential loop ``[send(ta, ta.rows + dr, ta.cols + dc) for dr, dc
        in offsets]``: each offset with any movement is its own round.  The
        quadrant collectives (broadcast, all-pairs replication) use this to
        charge a whole recursion level per call; the fast path then reduces
        each offset to closed-form scalar charges (``n`` messages of length
        ``|dr| + |dc|`` each).
        """
        offsets = [(int(dr), int(dc)) for dr, dc in offsets]
        plan = self.faults
        if (
            not self.fast
            or self.strict
            or len(ta) == 0
            or self.tracer is not None
            or self.profiler is not None
            or (plan is not None and plan.injects_faults)
        ):
            # every observing/validating feature wants real coordinate
            # arrays: degrade to the defining per-offset loop
            return [self.send(ta, ta.rows + dr, ta.cols + dc) for dr, dc in offsets]
        return self._send_shifts_fast(ta, offsets)

    def _send_shifts_fast(
        self, ta: TrackedArray, offsets: list[tuple[int, int]]
    ) -> list[TrackedArray]:
        n = len(ta)
        st = self.stats
        node = self._phase_node
        # uniform shifts preserve the argmax structure: the batch maxima
        # after a shift are the input maxima plus the shift charges
        base_depth = int(ta.depth.max())
        base_dist = int(ta.dist.max())
        depth = None
        outs = []
        for dr, dc in offsets:
            s = abs(dr) + abs(dc)
            rows = ta.rows + dr if dr else ta.rows
            cols = ta.cols + dc if dc else ta.cols
            if s == 0:
                outs.append(_tracked(self, ta.payload, rows, cols, ta.depth, ta.dist))
                self.observe(ta.depth, ta.dist)
                continue
            if depth is None:
                depth = ta.depth + 1
            dist = ta.dist + s
            st.energy += n * s
            st.messages += n
            st.rounds += 1
            dmax = base_depth + 1
            smax = base_dist + s
            if dmax > st.max_depth:
                st.max_depth = dmax
            if smax > st.max_distance:
                st.max_distance = smax
            if node is not None:
                node.energy += n * s
                node.messages += n
                node.sends += 1
                if dmax > node.max_depth:
                    node.max_depth = dmax
                if smax > node.max_distance:
                    node.max_distance = smax
            outs.append(_tracked(self, ta.payload, rows, cols, depth, dist))
        return outs

    def send_many(
        self, batches: Sequence[tuple[TrackedArray, np.ndarray, np.ndarray]]
    ) -> list[TrackedArray]:
        """Issue several independent ``send`` batches, each its own round.

        Defined as — and on the reference path literally executed as — the
        sequential loop ``[send(ta, rows, cols) for ta, rows, cols in
        batches]``.  The quadrant reduce uses this to charge one recursion
        level (three child-to-parent sends) per call; the fast path fuses
        the distance arithmetic over one concatenated layout.
        """
        batches = list(batches)
        if not batches:
            return []
        plan = self.faults
        if (
            not self.fast
            or self.strict
            or self.tracer is not None
            or self.profiler is not None
            or (plan is not None and plan.injects_faults)
            or any(len(b[0]) == 0 for b in batches)
        ):
            return [self.send(ta, rows, cols) for ta, rows, cols in batches]
        return self._send_many_fast(batches)

    def _send_many_fast(
        self, batches: list[tuple[TrackedArray, np.ndarray, np.ndarray]]
    ) -> list[TrackedArray]:
        starts = np.zeros(len(batches), dtype=np.int64)
        sizes = [len(b[0]) for b in batches]
        np.cumsum(sizes[:-1], out=starts[1:])
        src_r = np.concatenate([b[0].rows for b in batches])
        src_c = np.concatenate([b[0].cols for b in batches])
        dst_r = np.concatenate([np.asarray(b[1], dtype=np.int64) for b in batches])
        dst_c = np.concatenate([np.asarray(b[2], dtype=np.int64) for b in batches])
        d = np.subtract(dst_r, src_r)
        np.abs(d, out=d)
        t = np.subtract(dst_c, src_c)
        np.abs(t, out=t)
        d += t
        moved = d > 0
        messages = int(np.count_nonzero(moved))
        st = self.stats
        node = self._phase_node
        energy = int(np.add.reduce(d))
        st.energy += energy
        st.messages += messages
        depth = np.concatenate([b[0].depth for b in batches]) + moved
        dist = np.concatenate([b[0].dist for b in batches]) + d
        if messages:
            # rounds/sends count the batches that actually communicate;
            # maxima distribute (max of per-batch maxima == global max)
            cs = np.zeros(len(moved) + 1, dtype=np.int64)
            np.cumsum(moved, out=cs[1:])
            per = np.diff(np.append(cs[starts], messages))
            ncomm = int(np.count_nonzero(per))
            st.rounds += ncomm
            dmax = int(depth.max())
            smax = int(dist.max())
            if dmax > st.max_depth:
                st.max_depth = dmax
            if smax > st.max_distance:
                st.max_distance = smax
            if node is not None:
                node.sends += ncomm
                if dmax > node.max_depth:
                    node.max_depth = dmax
                if smax > node.max_distance:
                    node.max_distance = smax
        elif len(moved):
            self.observe(depth, dist)
        if node is not None:
            node.energy += energy
            node.messages += messages
        outs = []
        for i, (ta, rows, cols) in enumerate(batches):
            a = int(starts[i])
            b = a + sizes[i]
            outs.append(
                _tracked(
                    self,
                    ta.payload,
                    np.asarray(rows, dtype=np.int64),
                    np.asarray(cols, dtype=np.int64),
                    depth[a:b],
                    dist[a:b],
                )
            )
        return outs

    def quadrant_broadcast(
        self, ta: TrackedArray, side: int, scale: int = 1
    ) -> TrackedArray:
        """Recursive quadrant replication of ``ta`` over a ``side x side``
        lattice of strides ``scale`` (the 2D broadcast / all-pairs
        replication pattern).

        Defined as — and on the reference path literally executed as — the
        doubling loop: while ``s > 1`` concatenate ``cur`` with its three
        copies shifted by ``(0, h)``, ``(h, 0)``, ``(h, h)`` where
        ``h = (s // 2) * scale``.  ``side`` must be a power of two.  The
        fast path materializes the final ``len(ta) * side**2`` layout in
        closed form (offsets, depth and distance increments per quadrant
        index) and charges the loop's exact counters.
        """
        side = int(side)
        if side <= 1:
            return ta
        plan = self.faults
        if (
            self.fast
            and not self.strict
            and self.tracer is None
            and self.profiler is None
            and (plan is None or not plan.injects_faults)
            and len(ta)
        ):
            return _tracked(self, *quadrant_broadcast_fast(self, ta, side, int(scale)))
        cur = ta
        s = side
        while s > 1:
            half = (s // 2) * scale
            parts = [cur]
            parts += self.send_shifts(cur, ((0, half), (half, 0), (half, half)))
            cur = concat_tracked(parts)
            s //= 2
        return cur

    def quadrant_reduce(
        self,
        ta: TrackedArray,
        side: int,
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> TrackedArray:
        """Quadrant-tree reduce of Z-ordered square blocks (reverse of
        :meth:`quadrant_broadcast`).

        ``ta`` holds ``side * side`` entries per block in block-local Z-order
        (blocks contiguous); ``combine`` folds two payload arrays and must be
        associative.  Defined as — and on the reference path literally
        executed as — the level loop: split ``cur`` into the four quadrant
        strides, send quadrants 1-3 onto quadrant 0's cells, fold payloads in
        the fixed order ``((c0 . c1) . c2) . c3``.  Returns one entry per
        block at the block corner.  The fast path runs the same loop over the
        raw field arrays, skipping per-level TrackedArray bookkeeping.
        """
        side = int(side)
        if side <= 1:
            return ta
        plan = self.faults
        if (
            self.fast
            and not self.strict
            and self.tracer is None
            and self.profiler is None
            and (plan is None or not plan.injects_faults)
            and len(ta)
        ):
            per = side * side
            payload, depth, dist = quadrant_reduce_fast(
                self, ta.payload, ta.depth, ta.dist, side, combine
            )
            return _tracked(self, payload, ta.rows[::per], ta.cols[::per], depth, dist)
        cur = ta
        remaining = side * side
        while remaining > 1:
            c0, c1, c2, c3 = cur[0::4], cur[1::4], cur[2::4], cur[3::4]
            r1, r2, r3 = self.send_many(
                [(c1, c0.rows, c0.cols), (c2, c0.rows, c0.cols), (c3, c0.rows, c0.cols)]
            )
            payload = combine(
                combine(combine(c0.payload, r1.payload), r2.payload), r3.payload
            )
            cur = c0.combined_with(r1, r2, r3, payload=payload)
            remaining //= 4
        return cur

    def _charge_recovery(self, energy: int, retries: int, out: TrackedArray | None) -> None:
        """Attribute recovery charges to the dedicated ``recovery`` phase."""
        if (not energy and not retries) or self._phase_node is None:
            return
        rec = self.cost_tree.root.child(RECOVERY_PHASE)
        rec.energy += energy
        rec.messages += retries
        rec.sends += 1
        if out is not None and len(out):
            rec.max_depth = max(rec.max_depth, int(out.depth.max()))
            rec.max_distance = max(rec.max_distance, int(out.dist.max()))

    def relay(
        self,
        src: tuple[int, int],
        stop_rows: np.ndarray,
        stop_cols: np.ndarray,
        depth0: int = 0,
        dist0: int = 0,
    ) -> tuple[int, int]:
        """Charge a *sequential* relayed message chain src -> stop_1 -> ... -> stop_t.

        Models walk-style access patterns (binary searches whose successive
        probes get geometrically closer): the query travels from stop to stop,
        each hop one message, each hop depending on the previous one.  Returns
        the ``(depth, dist)`` metadata of the value available at the final
        stop.

        A chain with no stops is a complete no-op — no message, no round,
        nothing observed; the caller's ``(depth0, dist0)`` pass through
        unchanged (the batched-zero-move analogue of ``send``'s free
        self-sends).
        """
        stop_rows, stop_cols = self._coerce_coords(stop_rows, stop_cols, "relay")
        if len(stop_rows) == 0:
            return int(depth0), int(dist0)
        chain_r = np.concatenate([[src[0]], stop_rows])
        chain_c = np.concatenate([[src[1]], stop_cols])
        plan = self.faults
        d = manhattan_arrays(chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:])
        nz = d > 0
        messages = int(nz.sum())

        # ---- fault recovery (same accounting as ``send``, per hop)
        detour_energy = spare_energy = retry_energy = retries = 0
        hop_failures = None
        d_eff = d
        if plan is not None and plan.injects_faults and messages:
            if plan.dead_regions:
                node_extra, node_spared = spare_extras(plan, chain_r, chain_c)
                # each hop pays for both of its endpoints' spares
                sp = node_extra[:-1] + node_extra[1:]
                sp[~nz] = 0
                spare_energy = int(sp.sum())
                if spare_energy:
                    d_eff = d_eff + sp
                    self.recovery.spared += int((node_spared[1:] & nz).sum())
                    self.recovery.spare_energy += spare_energy
                extra = detour_extras(
                    plan.dead_regions, chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:]
                )
                extra[~nz] = 0
                detour_energy = int(extra.sum())
                if detour_energy:
                    d_eff = d_eff + extra
                    self.recovery.detoured += int((extra > 0).sum())
                    self.recovery.detour_energy += detour_energy
            if plan.failure_prob > 0.0:
                f, dropped, corrupted = sample_failures(plan, messages)
                if f.any():
                    hop_failures = np.zeros(len(d), dtype=META_DTYPE)
                    hop_failures[nz] = f
                    retries = int(f.sum())
                    retry_energy = int((d_eff * hop_failures).sum())
                    rec = self.recovery
                    rec.dropped += int(dropped.sum())
                    rec.corrupted += int(corrupted.sum())
                    rec.retries += retries
                    rec.retry_energy += retry_energy
                    rec.backoff_ticks += backoff_ticks(plan, f)
                    rec.max_attempts = max(rec.max_attempts, int(f.max()) + 1)

        energy = int(d.sum())
        self.stats.energy += energy + spare_energy + detour_energy + retry_energy
        self.stats.messages += messages + retries
        if messages:
            self.stats.rounds += 1
        node = self._phase_node
        if node is not None:
            node.energy += energy
            node.messages += messages
            if messages:
                node.sends += 1
        if self.tracer is not None:
            self.tracer.record(
                chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:],
                self.stats.rounds, phase=self.current_phase, kind="relay",
            )
        if self.profiler is not None and messages:
            # per-hop cumulative chain metadata: hop i's depth/distance as
            # the relayed value leaves stop i (matches the returned totals)
            att = nz.astype(META_DTYPE)
            per_hop_dist = d_eff
            if hop_failures is not None:
                att = att + hop_failures
                per_hop_dist = d_eff * (1 + hop_failures)
            self.profiler.record_send(
                chain_r[:-1], chain_c[:-1], chain_r[1:], chain_c[1:],
                d_eff, hop_failures, nz,
                depth0 + np.cumsum(att), dist0 + np.cumsum(per_hop_dist),
                self.current_phase, "relay", self.stats.rounds,
            )
        depth = depth0 + messages + retries
        dist = dist0 + int(d_eff.sum()) + retry_energy
        self.stats.max_depth = max(self.stats.max_depth, depth)
        self.stats.max_distance = max(self.stats.max_distance, dist)
        if node is not None:
            node.max_depth = max(node.max_depth, depth)
            node.max_distance = max(node.max_distance, dist)
        self._charge_recovery(spare_energy + detour_energy + retry_energy, retries, None)
        return depth, dist

    def relay_many(
        self,
        chains: Sequence[tuple],
        carry: Sequence[bool] | None = None,
    ) -> list[tuple[int, int]]:
        """Charge many relayed chains in one call.

        ``chains`` is a sequence of ``(src, stop_rows, stop_cols, depth0,
        dist0)`` tuples, each exactly the argument list of :meth:`relay`.
        ``carry`` (optional, one bool per chain) links chains: a chain with
        ``carry[i]`` set starts from the *previous* chain's returned
        ``(depth, dist)`` instead of its own ``(depth0, dist0)`` — the
        two-level searches in selection thread the A-array search's end
        metadata into the B-array search this way.  ``carry[0]`` falls back
        to ``(0, 0)``.  Returns one ``(depth, dist)`` pair per chain.

        Semantics are *defined* as the sequential loop of :meth:`relay`
        calls (the reference path runs exactly that loop, drawing one
        ``sample_failures`` per communicating chain in order).  The fast
        path charges every chain through one flattened ``(chain, hop)``
        layout with identical counters, rng stream, and trace records.
        """
        chains = list(chains)
        if carry is not None and len(carry) != len(chains):
            raise ValueError("carry must have one entry per chain")
        if not self.fast:
            return self._relay_many_reference(chains, carry)
        return relay_many_fast(self, chains, carry)

    def _relay_many_reference(
        self,
        chains: Sequence[tuple],
        carry: Sequence[bool] | None = None,
    ) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        prev = (0, 0)
        for i, (src, stop_rows, stop_cols, depth0, dist0) in enumerate(chains):
            if carry is not None and carry[i]:
                depth0, dist0 = prev
            prev = self.relay(src, stop_rows, stop_cols, int(depth0), int(dist0))
            out.append(prev)
        return out

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineStats:
        return self.stats.snapshot()

    def report(self, before: MachineStats | None = None) -> CostReport:
        if before is None:
            before = MachineStats()
        return self.stats.delta(before)

    def measure(self) -> "_Measurement":
        """Context manager capturing the cost delta of a code block::

            with machine.measure() as cost:
                scan(machine, data, region)
            print(cost.energy, cost.messages)
            print(cost.per_phase.render())   # phase-scoped breakdown

        ``cost.per_phase`` is the :class:`CostTree` delta over the block
        (phases whose counters did not change show zero self cost).
        """
        return _Measurement(self)


class ReferenceMachine(SpatialMachine):
    """A :class:`SpatialMachine` pinned to the per-call reference path.

    The conformance oracle: ``send`` and ``relay`` run the original scalar
    implementations, and every batched API (``send_shifts``,
    ``relay_many``) degrades to its defining sequential loop.  Constructing
    a plain ``SpatialMachine`` under ``REPRO_REFERENCE=1`` resolves to the
    same behavior; this class pins it regardless of the environment.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs["fast"] = False
        super().__init__(*args, **kwargs)


class _Measurement:
    """Mutable cost record filled in when its ``with`` block exits."""

    def __init__(self, machine: "SpatialMachine") -> None:
        self._machine = machine
        self.energy = 0
        self.messages = 0
        self.depth = 0
        self.distance = 0
        self.per_phase: CostTree = CostTree()

    def __enter__(self) -> "_Measurement":
        self._before = self._machine.snapshot()
        self._tree_before = self._machine.cost_tree.clone()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        rep = self._machine.stats.delta(self._before)
        self.energy = rep.energy
        self.messages = rep.messages
        self.depth = rep.depth
        self.distance = rep.distance
        self.per_phase = self._machine.cost_tree.delta(self._tree_before)
