"""Cost accounting for the Spatial Computer Model.

The model charges three quantities (paper, Section I.A):

* **energy** — the sum over all messages of the Manhattan distance travelled;
* **depth**  — the length (in messages) of the longest chain of messages that
  consecutively depend on each other;
* **distance** — the largest *total Manhattan distance* along any chain of
  dependent messages.

Energy is a global counter.  Depth and distance are per-*value* quantities: a
value produced by combining inputs inherits the elementwise maximum of its
inputs' depth/distance, and receiving a value over a wire of length ``d > 0``
adds ``1`` to depth and ``d`` to distance.  Local computation is free and a
"send" to the same processor is not a message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "MachineStats",
    "combine_meta",
    "META_DTYPE",
    "CostReport",
    "PhaseNode",
    "CostTree",
]

META_DTYPE = np.int64


@dataclass
class MachineStats:
    """Running totals for one :class:`~repro.machine.machine.SpatialMachine`."""

    energy: int = 0
    messages: int = 0
    #: number of ``send`` batches issued (a proxy for synchronous rounds;
    #: only used by the tracer's inbox audit, not by any cost metric).
    rounds: int = 0
    #: largest per-value depth ever observed on any value, including
    #: intermediate ones that are later discarded.
    max_depth: int = 0
    #: largest per-value chain distance ever observed.
    max_distance: int = 0

    def observe(self, depth: np.ndarray, dist: np.ndarray) -> None:
        if depth.size:
            self.max_depth = max(self.max_depth, int(depth.max()))
            self.max_distance = max(self.max_distance, int(dist.max()))

    def snapshot(self) -> "MachineStats":
        return MachineStats(
            energy=self.energy,
            messages=self.messages,
            rounds=self.rounds,
            max_depth=self.max_depth,
            max_distance=self.max_distance,
        )

    def delta(self, before: "MachineStats") -> "CostReport":
        """Costs incurred since ``before`` (a snapshot of this stats object)."""
        return CostReport(
            energy=self.energy - before.energy,
            messages=self.messages - before.messages,
            depth=self.max_depth,
            distance=self.max_distance,
        )


@dataclass(frozen=True)
class CostReport:
    """Immutable record of the cost of one algorithm run.

    ``depth``/``distance`` are the machine-wide maxima at the end of the run
    (per-value depth of the *results* is available on the returned
    :class:`~repro.machine.machine.TrackedArray` directly).
    """

    energy: int
    messages: int
    depth: int
    distance: int

    def as_dict(self) -> dict[str, int]:
        return {
            "energy": self.energy,
            "messages": self.messages,
            "depth": self.depth,
            "distance": self.distance,
        }


# ----------------------------------------------------------------------
# phase-scoped cost accounting
# ----------------------------------------------------------------------
class PhaseNode:
    """One node of the phase-path tree (e.g. ``mergesort2d/merge2d/scan``).

    *Self* counters hold only the charges incurred while this exact node was
    the machine's active phase; *inclusive* figures (computed on demand) add
    every descendant's self cost.  Energy/messages/sends are additive;
    ``max_depth``/``max_distance`` are the largest per-value chain metadata
    *observed* while the phase was active — chains started in earlier phases
    carry their metadata with them, so these are upper-bound markers of the
    critical path through the phase, not phase-local chain lengths.
    """

    __slots__ = (
        "name",
        "path",
        "parent",
        "children",
        "energy",
        "messages",
        "sends",
        "max_depth",
        "max_distance",
    )

    def __init__(self, name: str, parent: "PhaseNode | None" = None) -> None:
        self.name = name
        self.parent = parent
        if parent is None or not parent.path:
            self.path = name if parent is not None else ""
        else:
            self.path = f"{parent.path}/{name}"
        self.children: dict[str, PhaseNode] = {}
        self.energy = 0
        self.messages = 0
        #: communicating ``send``/``relay`` batches charged to this phase
        self.sends = 0
        self.max_depth = 0
        self.max_distance = 0

    # -- structure ------------------------------------------------------
    def child(self, name: str) -> "PhaseNode":
        """Get-or-create the child span ``name`` (re-entry accumulates)."""
        node = self.children.get(name)
        if node is None:
            node = PhaseNode(name, parent=self)
            self.children[name] = node
        return node

    def walk(self, level: int = 0) -> Iterator[tuple["PhaseNode", int]]:
        """Pre-order traversal yielding ``(node, nesting level)``."""
        yield self, level
        for c in self.children.values():
            yield from c.walk(level + 1)

    # -- costs ----------------------------------------------------------
    def self_cost(self) -> dict[str, int]:
        return {
            "energy": self.energy,
            "messages": self.messages,
            "sends": self.sends,
            "max_depth": self.max_depth,
            "max_distance": self.max_distance,
        }

    def inclusive_cost(self) -> dict[str, int]:
        """Self cost plus the sum (max for depth/distance) over descendants."""
        total = self.self_cost()
        for c in self.children.values():
            sub = c.inclusive_cost()
            total["energy"] += sub["energy"]
            total["messages"] += sub["messages"]
            total["sends"] += sub["sends"]
            total["max_depth"] = max(total["max_depth"], sub["max_depth"])
            total["max_distance"] = max(total["max_distance"], sub["max_distance"])
        return total

    def as_dict(self) -> dict:
        """JSON-friendly nested representation (the ``CostTree`` schema)."""
        return {
            "name": self.name or "total",
            "path": self.path,
            "self": self.self_cost(),
            "inclusive": self.inclusive_cost(),
            "children": [c.as_dict() for c in self.children.values()],
        }

    def clone(self, parent: "PhaseNode | None" = None) -> "PhaseNode":
        node = PhaseNode(self.name, parent=parent)
        node.energy = self.energy
        node.messages = self.messages
        node.sends = self.sends
        node.max_depth = self.max_depth
        node.max_distance = self.max_distance
        for name, c in self.children.items():
            node.children[name] = c.clone(parent=node)
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inc = self.inclusive_cost()
        return f"PhaseNode({self.path or 'total'}, E={inc['energy']}, msgs={inc['messages']})"


class CostTree:
    """The per-phase cost breakdown of one :class:`SpatialMachine` run.

    The root accumulates charges incurred outside any ``machine.phase(...)``
    span; its *inclusive* totals always equal the machine's flat
    :class:`MachineStats` counters, so the tree is a lossless decomposition.
    """

    def __init__(self, root: PhaseNode | None = None) -> None:
        self.root = root if root is not None else PhaseNode("")

    # -- access ---------------------------------------------------------
    def node(self, path: str) -> PhaseNode | None:
        """Look up ``"a/b/c"`` (the empty path returns the root)."""
        node = self.root
        for part in [p for p in path.split("/") if p]:
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def paths(self) -> list[str]:
        return [n.path for n, _ in self.root.walk()]

    def total(self) -> CostReport:
        inc = self.root.inclusive_cost()
        return CostReport(
            energy=inc["energy"],
            messages=inc["messages"],
            depth=inc["max_depth"],
            distance=inc["max_distance"],
        )

    def as_dict(self) -> dict:
        return self.root.as_dict()

    def flatten(self) -> list[dict]:
        """One row per phase, pre-order: path, self and inclusive costs."""
        rows = []
        for node, level in self.root.walk():
            inc = node.inclusive_cost()
            rows.append(
                {
                    "path": node.path or "total",
                    "level": level,
                    "self_energy": node.energy,
                    "self_messages": node.messages,
                    "inclusive_energy": inc["energy"],
                    "inclusive_messages": inc["messages"],
                    "inclusive_sends": inc["sends"],
                    "max_depth": inc["max_depth"],
                    "max_distance": inc["max_distance"],
                }
            )
        return rows

    # -- snapshots ------------------------------------------------------
    def clone(self) -> "CostTree":
        return CostTree(self.root.clone())

    def delta(self, before: "CostTree") -> "CostTree":
        """Phase costs incurred since ``before`` (a snapshot of this tree).

        Additive counters subtract node-wise; depth/distance maxima keep
        their current values (they are monotone running maxima, matching
        :meth:`MachineStats.delta`).
        """

        def sub(node: PhaseNode, prev: PhaseNode | None, parent: PhaseNode | None) -> PhaseNode:
            out = PhaseNode(node.name, parent=parent)
            out.energy = node.energy - (prev.energy if prev else 0)
            out.messages = node.messages - (prev.messages if prev else 0)
            out.sends = node.sends - (prev.sends if prev else 0)
            out.max_depth = node.max_depth
            out.max_distance = node.max_distance
            for name, c in node.children.items():
                out.children[name] = sub(c, prev.children.get(name) if prev else None, out)
            return out

        return CostTree(sub(self.root, before.root, None))

    # -- display --------------------------------------------------------
    def render(self, min_energy: int = 0) -> str:
        """Aligned text tree: one line per phase with self/inclusive costs.

        ``min_energy`` prunes phases whose inclusive energy falls below the
        threshold (keeps big trees readable).
        """
        rows = [
            r
            for r in self.flatten()
            if r["inclusive_energy"] >= min_energy or r["path"] == "total"
        ]
        name_col = [("  " * r["level"]) + r["path"].rsplit("/", 1)[-1] for r in rows]
        headers = ["phase", "energy", "self E", "messages", "depth", "distance"]
        cells = [
            [
                name_col[i],
                str(r["inclusive_energy"]),
                str(r["self_energy"]),
                str(r["inclusive_messages"]),
                str(r["max_depth"]),
                str(r["max_distance"]),
            ]
            for i, r in enumerate(rows)
        ]
        widths = [
            max(len(headers[j]), *(len(c[j]) for c in cells)) for j in range(len(headers))
        ]
        lines = [
            headers[0].ljust(widths[0])
            + "  "
            + "  ".join(h.rjust(widths[j + 1]) for j, h in enumerate(headers[1:]))
        ]
        lines.append("  ".join("-" * w for w in widths))
        for c in cells:
            lines.append(
                c[0].ljust(widths[0])
                + "  "
                + "  ".join(c[j + 1].rjust(widths[j + 1]) for j in range(len(headers) - 1))
            )
        return "\n".join(lines)


def combine_meta(
    depths: list[np.ndarray], dists: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Metadata of a value computed locally from several co-located inputs.

    Depth and chain-distance are each the elementwise maximum over the inputs
    (the new value depends on *all* of them; local combination itself is free).
    """
    depth = depths[0]
    dist = dists[0]
    for d in depths[1:]:
        depth = np.maximum(depth, d)
    for d in dists[1:]:
        dist = np.maximum(dist, d)
    return depth.astype(META_DTYPE, copy=True), dist.astype(META_DTYPE, copy=True)
