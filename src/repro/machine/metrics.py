"""Cost accounting for the Spatial Computer Model.

The model charges three quantities (paper, Section I.A):

* **energy** — the sum over all messages of the Manhattan distance travelled;
* **depth**  — the length (in messages) of the longest chain of messages that
  consecutively depend on each other;
* **distance** — the largest *total Manhattan distance* along any chain of
  dependent messages.

Energy is a global counter.  Depth and distance are per-*value* quantities: a
value produced by combining inputs inherits the elementwise maximum of its
inputs' depth/distance, and receiving a value over a wire of length ``d > 0``
adds ``1`` to depth and ``d`` to distance.  Local computation is free and a
"send" to the same processor is not a message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MachineStats", "combine_meta", "META_DTYPE"]

META_DTYPE = np.int64


@dataclass
class MachineStats:
    """Running totals for one :class:`~repro.machine.machine.SpatialMachine`."""

    energy: int = 0
    messages: int = 0
    #: number of ``send`` batches issued (a proxy for synchronous rounds;
    #: only used by the tracer's inbox audit, not by any cost metric).
    rounds: int = 0
    #: largest per-value depth ever observed on any value, including
    #: intermediate ones that are later discarded.
    max_depth: int = 0
    #: largest per-value chain distance ever observed.
    max_distance: int = 0

    def observe(self, depth: np.ndarray, dist: np.ndarray) -> None:
        if depth.size:
            self.max_depth = max(self.max_depth, int(depth.max()))
            self.max_distance = max(self.max_distance, int(dist.max()))

    def snapshot(self) -> "MachineStats":
        return MachineStats(
            energy=self.energy,
            messages=self.messages,
            rounds=self.rounds,
            max_depth=self.max_depth,
            max_distance=self.max_distance,
        )

    def delta(self, before: "MachineStats") -> "CostReport":
        """Costs incurred since ``before`` (a snapshot of this stats object)."""
        return CostReport(
            energy=self.energy - before.energy,
            messages=self.messages - before.messages,
            depth=self.max_depth,
            distance=self.max_distance,
        )


@dataclass(frozen=True)
class CostReport:
    """Immutable record of the cost of one algorithm run.

    ``depth``/``distance`` are the machine-wide maxima at the end of the run
    (per-value depth of the *results* is available on the returned
    :class:`~repro.machine.machine.TrackedArray` directly).
    """

    energy: int
    messages: int
    depth: int
    distance: int

    def as_dict(self) -> dict[str, int]:
        return {
            "energy": self.energy,
            "messages": self.messages,
            "depth": self.depth,
            "distance": self.distance,
        }


def combine_meta(
    depths: list[np.ndarray], dists: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Metadata of a value computed locally from several co-located inputs.

    Depth and chain-distance are each the elementwise maximum over the inputs
    (the new value depends on *all* of them; local combination itself is free).
    """
    depth = depths[0]
    dist = dists[0]
    for d in depths[1:]:
        depth = np.maximum(depth, d)
    for d in dists[1:]:
        dist = np.maximum(dist, d)
    return depth.astype(META_DTYPE, copy=True), dist.astype(META_DTYPE, copy=True)
