"""Z-order (Morton) curve utilities.

The paper (Section III) stores arrays along the Z-order traversal of a square
grid: visit the four quadrants recursively, top-left, top-right, bottom-left,
bottom-right.  With that quadrant order, the Morton code of a cell interleaves
the bits of its row and column coordinates with the **row bit above the column
bit** at every level:

    z = ... r1 c1 r0 c0   (bit interleave, row = high bit of each pair)

Observation 1 (paper): sending one message along every consecutive edge of the
Z-order curve of a sqrt(n) x sqrt(n) grid costs O(n) total energy.  This file
provides vectorized encode/decode plus a helper that evaluates that curve
energy exactly (used by tests and the Fig. 1 bench).

We also define a *generalized* Z-order for 2:1 rectangles (height x 2*height or
2*width x width), needed because the 4-way mergesort merges two adjacent square
quadrants whose union is a rectangle: the rectangle is traversed as its two
(left/right or top/bottom) square halves in order, each in square Z-order.
"""

from __future__ import annotations

import numpy as np

from .geometry import Region

__all__ = [
    "interleave_bits",
    "deinterleave_bits",
    "zorder_encode",
    "zorder_decode",
    "zorder_coords",
    "zorder_curve_energy",
    "is_power_of_two",
]


def is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


# Masks for the classic parallel bit-interleave (up to 32-bit inputs, 64-bit out).
_M32 = np.uint64(0x0000_0000_FFFF_FFFF)
_M16 = np.uint64(0x0000_FFFF_0000_FFFF)
_M8 = np.uint64(0x00FF_00FF_00FF_00FF)
_M4 = np.uint64(0x0F0F_0F0F_0F0F_0F0F)
_M2 = np.uint64(0x3333_3333_3333_3333)
_M1 = np.uint64(0x5555_5555_5555_5555)


def _spread(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each element so bit i moves to bit 2i."""
    x = x.astype(np.uint64) & _M32
    x = (x | (x << np.uint64(16))) & _M16
    x = (x | (x << np.uint64(8))) & _M8
    x = (x | (x << np.uint64(4))) & _M4
    x = (x | (x << np.uint64(2))) & _M2
    x = (x | (x << np.uint64(1))) & _M1
    return x


def _compact(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread`: gather every other bit down."""
    x = x.astype(np.uint64) & _M1
    x = (x | (x >> np.uint64(1))) & _M2
    x = (x | (x >> np.uint64(2))) & _M4
    x = (x | (x >> np.uint64(4))) & _M8
    x = (x | (x >> np.uint64(8))) & _M16
    x = (x | (x >> np.uint64(16))) & _M32
    return x


def interleave_bits(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Interleave two coordinate arrays; ``hi`` supplies the odd (upper) bits."""
    return (_spread(np.asarray(hi)) << np.uint64(1)) | _spread(np.asarray(lo))


def deinterleave_bits(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`interleave_bits` -> (hi, lo)."""
    z = np.asarray(z, dtype=np.uint64)
    return _compact(z >> np.uint64(1)), _compact(z)


def zorder_encode(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Morton index of grid cells (row bit above column bit).

    Rows/cols are *local* coordinates (0-based within the square subgrid).
    """
    return interleave_bits(rows, cols).astype(np.int64)


def zorder_decode(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Local ``(rows, cols)`` of Morton indices."""
    r, c = deinterleave_bits(z)
    return r.astype(np.int64), c.astype(np.int64)


def zorder_coords(region: Region, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Absolute coordinates of the first ``n`` cells of ``region`` in Z-order.

    Supports square power-of-two regions and 2:1 / 1:2 rectangles whose long
    side is split into two square halves traversed in order (generalized
    Z-order used by the rectangle merges of the 2D mergesort).
    """
    if n is None:
        n = region.size
    if n > region.size:
        raise ValueError(f"requested {n} cells from region of size {region.size}")
    h, w = region.height, region.width
    if h == w:
        if not is_power_of_two(h):
            raise ValueError(f"Z-order needs power-of-two square side, got {region}")
        z = np.arange(n, dtype=np.int64)
        r, c = zorder_decode(z)
        return region.row + r, region.col + c
    if w == 2 * h:
        left, right = region.halves(axis=1)
        return _concat_halves(left, right, n)
    if h == 2 * w:
        top, bottom = region.halves(axis=0)
        return _concat_halves(top, bottom, n)
    raise ValueError(f"unsupported Z-order region shape {region}")


def _concat_halves(first: Region, second: Region, n: int) -> tuple[np.ndarray, np.ndarray]:
    k = min(n, first.size)
    r0, c0 = zorder_coords(first, k)
    if n <= first.size:
        return r0, c0
    r1, c1 = zorder_coords(second, n - first.size)
    return np.concatenate([r0, r1]), np.concatenate([c0, c1])


def zorder_curve_energy(side: int) -> int:
    """Exact total Manhattan length of the Z-order curve on a side x side grid.

    Observation 1 states this is O(n) with n = side**2; tests pin the constant.
    """
    rows, cols = zorder_coords(Region(0, 0, side, side))
    return int(
        np.sum(np.abs(np.diff(rows)) + np.abs(np.diff(cols)))
    )
