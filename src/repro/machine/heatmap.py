"""Heatmap renderers for profiler grids: ASCII for terminals, SVG for docs.

Both renderers take the sparse ``{(row, col): value}`` maps the
:class:`~repro.machine.profiler.SpatialProfiler` accumulates (or any map of
the same shape, e.g. :meth:`Tracer.energy_by_cell`), densify them over the
occupied bounding box, and shade by value.  No third-party plotting
dependency: the SVG is hand-assembled markup any browser (and Perfetto's
screenshot tooling) renders.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Mapping

import numpy as np

from .profiler import grid_to_dense

__all__ = ["render_ascii", "render_svg", "write_heatmap"]

#: terminal shading ramp, light to heavy
_ASCII_RAMP = " .:-=+*#%@"

#: inferno-like color ramp anchors (fraction, (r, g, b))
_SVG_RAMP = (
    (0.00, (12, 7, 35)),
    (0.25, (87, 16, 110)),
    (0.50, (188, 55, 84)),
    (0.75, (249, 142, 9)),
    (1.00, (252, 255, 164)),
)


def _densify(cells: Mapping[tuple[int, int], int]):
    dense, origin = grid_to_dense(dict(cells))
    return dense.astype(np.float64), origin


def _ramp_color(frac: float) -> str:
    frac = min(1.0, max(0.0, frac))
    for (f0, c0), (f1, c1) in zip(_SVG_RAMP, _SVG_RAMP[1:]):
        if frac <= f1:
            t = 0.0 if f1 == f0 else (frac - f0) / (f1 - f0)
            r, g, b = (round(a + t * (b_ - a)) for a, b_ in zip(c0, c1))
            return f"#{r:02x}{g:02x}{b:02x}"
    r, g, b = _SVG_RAMP[-1][1]  # pragma: no cover - frac > 1 clamped above
    return f"#{r:02x}{g:02x}{b:02x}"


def render_ascii(
    cells: Mapping[tuple[int, int], int], title: str = "", max_width: int = 96
) -> str:
    """Shade a cell map with terminal characters (one char per cell).

    Wide grids are block-downsampled (each character then aggregates a
    ``k x k`` block, stated in the legend) so the picture fits ``max_width``
    columns.
    """
    dense, (r0, c0) = _densify(cells)
    if dense.size == 0:
        return f"{title + ': ' if title else ''}(empty grid)"
    k = 1
    while dense.shape[1] / k > max_width:
        k *= 2
    if k > 1:
        h = -(-dense.shape[0] // k) * k
        w = -(-dense.shape[1] // k) * k
        padded = np.zeros((h, w))
        padded[: dense.shape[0], : dense.shape[1]] = dense
        dense = padded.reshape(h // k, k, w // k, k).sum(axis=(1, 3))
    vmax = dense.max()
    lines = []
    if title:
        lines.append(title)
    if vmax <= 0:
        scaled = np.zeros_like(dense, dtype=np.int64)
    else:
        scaled = np.minimum(
            (dense / vmax * (len(_ASCII_RAMP) - 1)).round().astype(np.int64),
            len(_ASCII_RAMP) - 1,
        )
        # occupied-but-faint cells still get the lightest non-blank shade
        scaled[(dense > 0) & (scaled == 0)] = 1
    for row in scaled:
        lines.append("".join(_ASCII_RAMP[v] for v in row))
    block = f", 1 char = {k}x{k} cells" if k > 1 else ""
    lines.append(
        f"origin=({r0}, {c0}), max={int(vmax)}{block}, "
        f"ramp '{_ASCII_RAMP.strip()}' light->heavy"
    )
    return "\n".join(lines)


def render_svg(
    cells: Mapping[tuple[int, int], int],
    title: str = "heatmap",
    cell_px: int | None = None,
    log_scale: bool = True,
) -> str:
    """Standalone SVG heatmap of a cell map (log-shaded by default).

    Log shading keeps tree-pattern hotspots from washing the rest of the
    grid to black; pass ``log_scale=False`` for a linear ramp.
    """
    dense, (r0, c0) = _densify(cells)
    h, w = (dense.shape if dense.size else (1, 1))
    if cell_px is None:
        cell_px = max(3, min(24, 640 // max(h, w)))
    pad, header, footer = 6, 24, 30
    width = w * cell_px + 2 * pad
    height = h * cell_px + header + footer + 2 * pad
    vmax = float(dense.max()) if dense.size else 0.0
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{pad}" y="{header - 8}" font-family="monospace" '
        f'font-size="13">{_esc(title)}</text>',
    ]
    if dense.size and vmax > 0:
        if log_scale:
            shade = np.log1p(dense) / np.log1p(vmax)
        else:
            shade = dense / vmax
        ys, xs = np.nonzero(dense)
        for r, c in zip(ys.tolist(), xs.tolist()):
            color = _ramp_color(float(shade[r, c]))
            out.append(
                f'<rect x="{pad + c * cell_px}" y="{header + pad + r * cell_px}" '
                f'width="{cell_px}" height="{cell_px}" fill="{color}">'
                f"<title>({r + r0}, {c + c0}): {int(dense[r, c])}</title></rect>"
            )
    # legend: the ramp plus the extremes
    bar_y = header + pad + h * cell_px + 8
    bar_w = max(60, width - 2 * pad - 120)
    steps = 24
    for i in range(steps):
        out.append(
            f'<rect x="{pad + i * bar_w // steps}" y="{bar_y}" '
            f'width="{-(-bar_w // steps)}" height="8" '
            f'fill="{_ramp_color((i + 0.5) / steps)}"/>'
        )
    scale = "log" if log_scale else "linear"
    out.append(
        f'<text x="{pad + bar_w + 6}" y="{bar_y + 8}" font-family="monospace" '
        f'font-size="10">0 .. {int(vmax)} ({scale}), origin=({r0}, {c0})</text>'
    )
    out.append("</svg>")
    return "\n".join(out)


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def write_heatmap(
    cells: Mapping[tuple[int, int], int],
    target: str | Path | IO[str],
    title: str = "heatmap",
) -> str:
    """Write a heatmap, picking the format from the filename.

    ``*.svg`` gets the SVG renderer; anything else (``.txt``, ``.asc``, a
    bare stream) gets the ASCII renderer.  Returns the format written.
    """
    if hasattr(target, "write"):
        target.write(render_ascii(cells, title) + "\n")  # type: ignore[union-attr]
        return "ascii"
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".svg":
        path.write_text(render_svg(cells, title) + "\n")
        return "svg"
    path.write_text(render_ascii(cells, title) + "\n")
    return "ascii"
