"""Chrome trace-event export: load a profiled run into Perfetto.

Converts a :class:`~repro.machine.profiler.SpatialProfiler`'s phase and
counter timelines into the Trace Event Format consumed by
``https://ui.perfetto.dev`` and ``chrome://tracing``:

* **phase spans** (``ph: "B"``/``"E"`` on the ``phases`` thread) — every
  ``machine.phase(...)`` span, nested exactly as the algorithm opened them;
* **counter tracks** (``ph: "C"``) — cumulative energy, per-batch messages,
  and the running ``max_depth`` after every communicating batch;
* **critical-path hops** (``ph: "X"`` on the ``critical path`` thread) —
  the depth witness's hops, labelled with their endpoints and phase.

The model has no wall clock; the time axis is the machine's *batch tick*
(one unit per communicating ``send``/``relay``), scaled so one batch reads
as one microsecond in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profiler import SpatialProfiler

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_PID = 1
_TID_PHASES = 1
_TID_WITNESS = 2


def chrome_trace_events(profiler: "SpatialProfiler", label: str = "repro") -> dict:
    """Build the ``{"traceEvents": [...]}`` document for one profiled run."""
    events: list[dict] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": f"SpatialMachine ({label})"}},
        {"ph": "M", "pid": _PID, "tid": _TID_PHASES, "name": "thread_name",
         "args": {"name": "phases"}},
        {"ph": "M", "pid": _PID, "tid": _TID_WITNESS, "name": "thread_name",
         "args": {"name": "critical path (depth witness)"}},
    ]
    # ---- phase spans; close any still-open spans at the final tick so the
    # file stays well-formed even if export happens mid-phase
    open_stack: list[str] = []
    for tick, ph, path in profiler.phase_events:
        name = path.rsplit("/", 1)[-1] or "(top level)"
        if ph == "B":
            open_stack.append(path)
            events.append({"ph": "B", "pid": _PID, "tid": _TID_PHASES,
                           "ts": tick, "name": name, "args": {"path": path}})
        else:
            if open_stack:
                open_stack.pop()
            events.append({"ph": "E", "pid": _PID, "tid": _TID_PHASES,
                           "ts": tick, "name": name})
    for path in reversed(open_stack):
        events.append({"ph": "E", "pid": _PID, "tid": _TID_PHASES,
                       "ts": profiler.tick, "name": path.rsplit("/", 1)[-1]})
    # ---- counter tracks, one sample per communicating batch
    for tick, energy_cum, messages, depth in profiler.counters:
        events.append({"ph": "C", "pid": _PID, "ts": tick, "name": "energy",
                       "args": {"cumulative": energy_cum}})
        events.append({"ph": "C", "pid": _PID, "ts": tick, "name": "messages",
                       "args": {"per batch": messages}})
        events.append({"ph": "C", "pid": _PID, "ts": tick, "name": "max_depth",
                       "args": {"so far": depth}})
    # ---- the depth witness as slices on its own thread
    witness = profiler.depth_witness() if profiler.witnesses else None
    if witness is not None:
        for i, hop in enumerate(witness.hops):
            events.append({
                "ph": "X", "pid": _PID, "tid": _TID_WITNESS,
                "ts": hop.tick, "dur": 1,
                "name": f"hop {i + 1}: {hop.src}->{hop.dst}",
                "args": {
                    "wire": hop.wire, "attempts": hop.attempts,
                    "depth_after": hop.depth_after,
                    "dist_after": hop.dist_after,
                    "phase": hop.phase, "kind": hop.kind,
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"label": label, "time_axis": "machine batch ticks"}}


def write_chrome_trace(
    profiler: "SpatialProfiler", target: str | Path | IO[str], label: str = "repro"
) -> int:
    """Write the trace JSON; returns the number of events emitted."""
    doc = chrome_trace_events(profiler, label)
    if hasattr(target, "write"):
        json.dump(doc, target, separators=(",", ":"))  # type: ignore[arg-type]
    else:
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(doc, fh, separators=(",", ":"))
    return len(doc["traceEvents"])
