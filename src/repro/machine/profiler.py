"""Spatial profiling: where energy is spent and which chain realizes it.

The simulator's flat counters (:class:`~repro.machine.metrics.MachineStats`)
and the per-phase :class:`~repro.machine.metrics.CostTree` say *how much* an
algorithm costs; this module answers *where* and *along which path*:

* **per-cell traffic grids** — messages sent/received and energy
  injected/absorbed per processor, accumulated online while the machine
  runs.  Cell energy includes every fault-recovery surcharge (sparing wires,
  detours, retransmissions), so the grids sum exactly to the flat
  ``MachineStats`` counters.
* **per-link utilization** — each message's nominal dimension-ordered XY
  route (column-first along the source row, then row-wise along the
  destination column) is unrolled onto unit grid links; link load is the
  on-chip-network congestion picture of the algorithm.  Recovery extras do
  not map onto concrete links, so link totals reflect the fault-free routes
  (weighted by delivery attempts) — the cell grids carry the surcharges.
* **critical-path witnesses** — the actual chain of message hops realizing
  the machine's ``max_depth`` and ``max_distance``, extracted by exact
  backward chaining over the recorded hops.  A complete witness *replays* to
  exactly the reported metric (sum of per-hop attempts for depth, sum of
  ``wire * attempts`` for distance) and carries per-hop phase paths, so
  "which phase owns the critical path" is answerable.

Attach a profiler with ``SpatialMachine(profile=True)`` (or pass a
preconfigured :class:`SpatialProfiler`); the machine then feeds it from
``send``/``relay`` with the per-message effective wire lengths and delivery
attempts the cost model actually charged.  Witness extraction retains one
compact record per message, capped at :attr:`SpatialProfiler.max_witness_messages`
(default 2,000,000 ≈ 130 MB); past the cap the grids keep accumulating but
witnesses are reported as unavailable.  Grids alone (via
:meth:`SpatialProfiler.add_batch`, e.g. streamed from a
:class:`~repro.machine.tracer.Tracer` sink or a loaded JSONL trace) need
only O(active cells) memory.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracer import MessageBatch

__all__ = [
    "SpatialProfiler",
    "CellGrid",
    "HopFrame",
    "Witness",
    "WitnessHop",
    "DEFAULT_WITNESS_LIMIT",
    "gini",
    "grid_to_dense",
]

#: default cap on hop records retained for witness extraction (~65 bytes per
#: message); the traffic grids are unaffected by the cap.
DEFAULT_WITNESS_LIMIT = 2_000_000


# ----------------------------------------------------------------------
# small vectorized helpers
# ----------------------------------------------------------------------
def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``[starts[i], starts[i] + lengths[i])`` ranges."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)


class CellGrid(Mapping):
    """Dense auto-growing 2-D accumulator with a sparse mapping view.

    Folding a batch is one ``np.bincount`` over raveled cell indices —
    per-batch cost O(batch + occupied bbox) with no Python-level loops —
    while readers see a standard ``{(row, col): value}`` mapping of the
    non-zero cells (``dict(grid)``, ``.items()``, ``.get()`` all work).
    The backing array grows geometrically as traffic reaches new cells, so
    the grid needs no up-front extent.
    """

    __slots__ = ("_a", "_r0", "_c0")

    def __init__(self) -> None:
        self._a: np.ndarray | None = None
        self._r0 = 0
        self._c0 = 0

    def add(self, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray) -> None:
        """Accumulate ``weights`` into cells ``(rows[i], cols[i])``."""
        if not len(rows):
            return
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        rmin, rmax = int(rows.min()), int(rows.max())
        cmin, cmax = int(cols.min()), int(cols.max())
        self._reserve(rmin, rmax, cmin, cmax)
        assert self._a is not None
        # fold over the *batch's* bounding box, not the whole grid, so a
        # spatially tight batch (a relay chain, one row of links) costs
        # O(batch) no matter how large the grid has grown
        box = self._a[rmin - self._r0 : rmax - self._r0 + 1,
                      cmin - self._c0 : cmax - self._c0 + 1]
        if box.size <= 4 * len(rows) + 64:
            idx = (rows - rmin) * box.shape[1] + (cols - cmin)
            acc = np.bincount(idx, weights=weights, minlength=box.size)
            # integer weights sum exactly in float64 (totals << 2**53)
            box += acc.astype(np.int64).reshape(box.shape)
        else:
            # scattered batch over a big box: per-element scatter-add wins
            np.add.at(self._a, (rows - self._r0, cols - self._c0), weights)

    def _reserve(self, rmin: int, rmax: int, cmin: int, cmax: int) -> None:
        if self._a is None:
            self._r0, self._c0 = rmin, cmin
            self._a = np.zeros((rmax - rmin + 1, cmax - cmin + 1), dtype=np.int64)
            return
        h, w = self._a.shape
        if (
            rmin >= self._r0
            and cmin >= self._c0
            and rmax < self._r0 + h
            and cmax < self._c0 + w
        ):
            return
        nr0 = min(self._r0, rmin)
        nc0 = min(self._c0, cmin)
        # grow geometrically (at least double per axis) so a sweep that keeps
        # reaching new cells amortizes to O(1) copies per fold
        nh = max(max(self._r0 + h, rmax + 1) - nr0, 2 * h)
        nw = max(max(self._c0 + w, cmax + 1) - nc0, 2 * w)
        grown = np.zeros((nh, nw), dtype=np.int64)
        grown[self._r0 - nr0 : self._r0 - nr0 + h, self._c0 - nc0 : self._c0 - nc0 + w] = self._a
        self._a, self._r0, self._c0 = grown, nr0, nc0

    def to_dense(self) -> tuple[np.ndarray, tuple[int, int]]:
        """Trimmed copy over the occupied bounding box, plus its origin."""
        if self._a is None or not self._a.any():
            return np.zeros((0, 0), dtype=np.int64), (0, 0)
        rr, cc = np.nonzero(self._a)
        r0, r1 = int(rr.min()), int(rr.max())
        c0, c1 = int(cc.min()), int(cc.max())
        return (
            self._a[r0 : r1 + 1, c0 : c1 + 1].copy(),
            (self._r0 + r0, self._c0 + c0),
        )

    # -- Mapping protocol over the non-zero cells ----------------------
    def __len__(self) -> int:
        return 0 if self._a is None else int(np.count_nonzero(self._a))

    def __iter__(self):
        if self._a is None:
            return iter(())
        rr, cc = np.nonzero(self._a)
        return (
            (int(r) + self._r0, int(c) + self._c0)
            for r, c in zip(rr.tolist(), cc.tolist())
        )

    def __getitem__(self, key: tuple[int, int]) -> int:
        r, c = key
        if self._a is not None:
            i, j = r - self._r0, c - self._c0
            if 0 <= i < self._a.shape[0] and 0 <= j < self._a.shape[1]:
                v = int(self._a[i, j])
                if v:
                    return v
        raise KeyError(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellGrid({len(self)} non-zero cells)"


def gini(values: Iterable[int | float]) -> float:
    """Gini coefficient of a load distribution (0 = flat, → 1 = concentrated)."""
    v = np.sort(np.asarray(list(values), dtype=np.float64))
    n = len(v)
    total = v.sum()
    if n == 0 or total <= 0:
        return 0.0
    # mean absolute difference formulation via the sorted prefix identity
    idx = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (idx * v).sum() / (n * total)) - (n + 1.0) / n)


def grid_to_dense(
    cells: Mapping[tuple[int, int], int]
) -> tuple[np.ndarray, tuple[int, int]]:
    """Densify a sparse cell map over its bounding box.

    Returns ``(array, (row0, col0))`` — ``array[r - row0, c - col0]`` is the
    cell's value.  An empty map densifies to a ``(0, 0)`` array at origin.
    """
    if isinstance(cells, CellGrid):
        return cells.to_dense()
    if not cells:
        return np.zeros((0, 0), dtype=np.int64), (0, 0)
    rows = np.array([k[0] for k in cells], dtype=np.int64)
    cols = np.array([k[1] for k in cells], dtype=np.int64)
    r0, c0 = int(rows.min()), int(cols.min())
    arr = np.zeros((int(rows.max()) - r0 + 1, int(cols.max()) - c0 + 1), dtype=np.int64)
    arr[rows - r0, cols - c0] = np.array(list(cells.values()), dtype=np.int64)
    return arr, (r0, c0)


# ----------------------------------------------------------------------
# hop records and witnesses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HopFrame:
    """One recorded ``send``/``relay`` batch, compacted to moved messages.

    ``wire`` is the *effective* per-message wire length the model charged
    (Manhattan distance plus any sparing/detour extras); ``attempts`` counts
    deliveries including fault retransmissions, so a hop's depth increment is
    ``attempts`` and its chain-distance increment is ``wire * attempts``.
    ``depth_after``/``dist_after`` are the per-value metadata right after the
    hop — the quantities backward chaining matches on.
    """

    src_rows: np.ndarray
    src_cols: np.ndarray
    dst_rows: np.ndarray
    dst_cols: np.ndarray
    wire: np.ndarray
    attempts: np.ndarray
    depth_after: np.ndarray
    dist_after: np.ndarray
    phase: str
    kind: str
    round: int
    tick: int

    def __len__(self) -> int:
        return len(self.src_rows)


@dataclass(frozen=True)
class WitnessHop:
    """One hop of a critical-path witness chain."""

    src: tuple[int, int]
    dst: tuple[int, int]
    wire: int
    attempts: int
    depth_after: int
    dist_after: int
    phase: str
    kind: str
    round: int
    tick: int
    #: True when backward chaining could not find the predecessor at this
    #: hop's source cell and fell back to a metric-exact hop elsewhere (only
    #: happens for model-dishonest programs that combine non-co-located
    #: values).
    relinked: bool = False

    def as_dict(self) -> dict:
        return {
            "src": list(self.src),
            "dst": list(self.dst),
            "wire": self.wire,
            "attempts": self.attempts,
            "depth_after": self.depth_after,
            "dist_after": self.dist_after,
            "phase": self.phase,
            "kind": self.kind,
            "round": self.round,
            "relinked": self.relinked,
        }


@dataclass
class Witness:
    """A chain of hops realizing one of the machine's chain metrics.

    ``replayed()`` re-derives the metric from the hops alone; for a
    ``complete`` witness it equals ``target`` exactly (the acceptance check
    the tests pin).  ``contiguous`` is False if any hop was relinked.
    """

    metric: str  # "depth" | "distance"
    target: int
    hops: list[WitnessHop] = field(default_factory=list)
    complete: bool = True
    contiguous: bool = True

    def replayed(self) -> int:
        if self.metric == "depth":
            return sum(h.attempts for h in self.hops)
        return sum(h.wire * h.attempts for h in self.hops)

    def phase_weights(self) -> dict[str, int]:
        """Metric mass contributed per phase path along the chain."""
        out: dict[str, int] = {}
        for h in self.hops:
            inc = h.attempts if self.metric == "depth" else h.wire * h.attempts
            out[h.phase] = out.get(h.phase, 0) + inc
        return out

    def owner_phase(self) -> str:
        """The phase path contributing the most metric mass to the chain."""
        weights = self.phase_weights()
        if not weights:
            return ""
        return max(sorted(weights), key=lambda p: weights[p])

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "target": self.target,
            "replayed": self.replayed(),
            "complete": self.complete,
            "contiguous": self.contiguous,
            "hops": [h.as_dict() for h in self.hops],
            "owner_phase": self.owner_phase(),
            "phase_weights": self.phase_weights(),
        }

    def summary(self) -> dict:
        """The witness minus the hop list (for bench documents)."""
        d = self.as_dict()
        d["hops"] = len(self.hops)
        return d

    def render(self, limit: int = 20) -> str:
        """Human-readable chain, longest-first truncated to ``limit`` hops."""
        lines = [
            f"{self.metric} witness: target={self.target} replayed={self.replayed()} "
            f"hops={len(self.hops)} complete={self.complete} "
            f"owner={self.owner_phase() or '(top level)'}"
        ]
        shown = self.hops if len(self.hops) <= limit else self.hops[:limit]
        for i, h in enumerate(shown):
            extra = f" x{h.attempts}" if h.attempts > 1 else ""
            mark = " [relinked]" if h.relinked else ""
            lines.append(
                f"  {i + 1:>3}. {h.src} -> {h.dst}  wire={h.wire}{extra}  "
                f"d={h.depth_after} s={h.dist_after}  {h.kind}  "
                f"{h.phase or '(top level)'}{mark}"
            )
        if len(self.hops) > limit:
            lines.append(f"  ... {len(self.hops) - limit} more hop(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the profiler
# ----------------------------------------------------------------------
class SpatialProfiler:
    """Accumulates spatial traffic and critical-path evidence for one run.

    Parameters
    ----------
    links:
        Unroll each message onto its XY route's unit links (costs O(wire)
        work per message; disable for very long runs that only need cell
        grids and witnesses).
    witnesses:
        Retain per-message hop records for witness extraction.
    max_witness_messages:
        Retention cap for hop records; once exceeded, recording continues
        for the grids but witnesses become unavailable
        (:attr:`witness_overflow` is set).
    """

    def __init__(
        self,
        links: bool = True,
        witnesses: bool = True,
        max_witness_messages: int = DEFAULT_WITNESS_LIMIT,
    ) -> None:
        self.links = links
        self.witnesses = witnesses
        self.max_witness_messages = int(max_witness_messages)
        # per-cell traffic (auto-growing grids with a sparse mapping view)
        self.sent = CellGrid()
        self.received = CellGrid()
        self.energy_out = CellGrid()
        self.energy_in = CellGrid()
        # per-link utilization: hlinks[(r, c)] is the load on the wire
        # between (r, c) and (r, c+1); vlinks[(r, c)] between (r, c), (r+1, c)
        self.hlinks = CellGrid()
        self.vlinks = CellGrid()
        # witness evidence
        self.frames: list[HopFrame] = []
        self.witness_messages = 0
        self.witness_overflow = False
        # running totals (mirror the machine's charged amounts)
        self.total_energy = 0
        self.total_messages = 0
        self.max_depth_seen = 0
        self.max_dist_seen = 0
        #: monotone batch counter — the time axis of the trace export
        self.tick = 0
        # phase span + counter timelines for the Chrome trace export
        self.phase_events: list[tuple[int, str, str]] = []  # (tick, "B"|"E", path)
        self.counters: list[tuple[int, int, int, int]] = []  # (tick, E_cum, msgs, depth)

    # ------------------------------------------------------------------
    # online recording (called by SpatialMachine)
    # ------------------------------------------------------------------
    def record_send(
        self,
        src_rows: np.ndarray,
        src_cols: np.ndarray,
        dst_rows: np.ndarray,
        dst_cols: np.ndarray,
        wire: np.ndarray,
        failures: np.ndarray | None,
        moved: np.ndarray,
        depth_after: np.ndarray,
        dist_after: np.ndarray,
        phase: str,
        kind: str,
        round_idx: int,
    ) -> None:
        """Fold one charged batch into the grids and the witness store.

        All arrays are aligned to the full batch; ``moved`` masks the
        messages that actually communicated.  ``wire`` is the effective
        per-message distance (``d_eff``) and ``failures`` the per-message
        failed-attempt counts (``None`` on the fault-free path).
        """
        if not moved.any():
            return
        sr = np.asarray(src_rows, dtype=np.int64)[moved]
        sc = np.asarray(src_cols, dtype=np.int64)[moved]
        dr = np.asarray(dst_rows, dtype=np.int64)[moved]
        dc = np.asarray(dst_cols, dtype=np.int64)[moved]
        w = np.asarray(wire, dtype=np.int64)[moved]
        if failures is None:
            attempts = np.ones(len(w), dtype=np.int64)
        else:
            attempts = 1 + np.asarray(failures, dtype=np.int64)[moved]
        self._fold(sr, sc, dr, dc, w, attempts)
        da = np.asarray(depth_after, dtype=np.int64)[moved]
        sa = np.asarray(dist_after, dtype=np.int64)[moved]
        md = int(da.max())
        ms = int(sa.max())
        if md > self.max_depth_seen:
            self.max_depth_seen = md
        if ms > self.max_dist_seen:
            self.max_dist_seen = ms
        if self.witnesses and not self.witness_overflow:
            if self.witness_messages + len(w) > self.max_witness_messages:
                self.witness_overflow = True
            else:
                self.frames.append(
                    HopFrame(
                        sr, sc, dr, dc, w.copy(), attempts, da, sa,
                        phase, kind, round_idx, self.tick,
                    )
                )
                self.witness_messages += len(w)
        self.tick += 1
        self.counters.append(
            (self.tick, self.total_energy, int(attempts.sum()), self.max_depth_seen)
        )

    def _fold(
        self,
        sr: np.ndarray,
        sc: np.ndarray,
        dr: np.ndarray,
        dc: np.ndarray,
        wire: np.ndarray,
        attempts: np.ndarray,
    ) -> None:
        energy = wire * attempts
        self.sent.add(sr, sc, attempts)
        self.received.add(dr, dc, attempts)
        self.energy_out.add(sr, sc, energy)
        self.energy_in.add(dr, dc, energy)
        self.total_energy += int(energy.sum())
        self.total_messages += int(attempts.sum())
        if self.links:
            self._fold_links(sr, sc, dr, dc, attempts)

    def _fold_links(
        self,
        sr: np.ndarray,
        sc: np.ndarray,
        dr: np.ndarray,
        dc: np.ndarray,
        attempts: np.ndarray,
    ) -> None:
        # dimension-ordered XY route: horizontal along the source row first
        hlen = np.abs(dc - sc)
        if hlen.any():
            rows = np.repeat(sr, hlen)
            cols = _concat_ranges(np.minimum(sc, dc), hlen)
            self.hlinks.add(rows, cols, np.repeat(attempts, hlen))
        vlen = np.abs(dr - sr)
        if vlen.any():
            rows = _concat_ranges(np.minimum(sr, dr), vlen)
            cols = np.repeat(dc, vlen)
            self.vlinks.add(rows, cols, np.repeat(attempts, vlen))

    def add_batch(self, batch: "MessageBatch") -> None:
        """Fold a plain :class:`~repro.machine.tracer.MessageBatch` into the grids.

        Offline/streamed entry point (a tracer sink, or batches loaded from a
        JSONL trace): updates the traffic grids and link loads only — a plain
        batch carries no per-value depth/distance metadata, so it contributes
        no witness evidence.
        """
        if not len(batch):
            return
        sr = np.asarray(batch.src_rows, dtype=np.int64)
        sc = np.asarray(batch.src_cols, dtype=np.int64)
        dr = np.asarray(batch.dst_rows, dtype=np.int64)
        dc = np.asarray(batch.dst_cols, dtype=np.int64)
        wire = np.abs(dr - sr) + np.abs(dc - sc)
        self._fold(sr, sc, dr, dc, wire, np.ones(len(sr), dtype=np.int64))
        self.tick += 1
        self.counters.append((self.tick, self.total_energy, len(sr), self.max_depth_seen))

    # -- phase span hooks (driven by machine.phase spans) ---------------
    def phase_enter(self, path: str) -> None:
        self.phase_events.append((self.tick, "B", path))

    def phase_exit(self, path: str) -> None:
        self.phase_events.append((self.tick, "E", path))

    # ------------------------------------------------------------------
    # witnesses
    # ------------------------------------------------------------------
    def depth_witness(self) -> Witness | None:
        """The hop chain realizing the largest observed per-value depth."""
        return self._witness("depth")

    def distance_witness(self) -> Witness | None:
        """The hop chain realizing the largest observed chain distance."""
        return self._witness("distance")

    def _witness(self, metric: str) -> Witness | None:
        if not self.witnesses or self.witness_overflow:
            return None
        if not self.frames:
            return Witness(metric=metric, target=0)

        def vals(f: HopFrame) -> np.ndarray:
            return f.depth_after if metric == "depth" else f.dist_after

        def incs(f: HopFrame) -> np.ndarray:
            return f.attempts if metric == "depth" else f.wire * f.attempts

        # index every hop by (value-after, destination cell); lists are in
        # frame order, so reverse scans prefer the latest eligible hop
        by_val_cell: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
        by_val: dict[int, list[tuple[int, int]]] = {}
        target = 0
        start: tuple[int, int] | None = None
        for fi, f in enumerate(self.frames):
            v = vals(f)
            for mi in range(len(f)):
                key = (int(v[mi]), int(f.dst_rows[mi]), int(f.dst_cols[mi]))
                by_val_cell.setdefault(key, []).append((fi, mi))
                by_val.setdefault(int(v[mi]), []).append((fi, mi))
            fmax = int(v.max())
            if fmax > target:
                target = fmax
                start = (fi, int(np.argmax(v)))

        wit = Witness(metric=metric, target=target)
        if start is None:  # all hops were zero-increment (cannot happen: moved only)
            return wit
        fi, mi = start
        chain: list[WitnessHop] = []
        while True:
            f = self.frames[fi]
            hop = WitnessHop(
                src=(int(f.src_rows[mi]), int(f.src_cols[mi])),
                dst=(int(f.dst_rows[mi]), int(f.dst_cols[mi])),
                wire=int(f.wire[mi]),
                attempts=int(f.attempts[mi]),
                depth_after=int(f.depth_after[mi]),
                dist_after=int(f.dist_after[mi]),
                phase=f.phase,
                kind=f.kind,
                round=f.round,
                tick=f.tick,
            )
            chain.append(hop)
            remaining = int(vals(f)[mi]) - int(incs(f)[mi])
            if remaining <= 0:
                break
            # the predecessor delivered exactly `remaining` to this hop's
            # source cell strictly earlier (relay chains record hop i's
            # predecessor within the same frame at a smaller message index)
            nxt = self._find_pred(by_val_cell.get((remaining, *hop.src)), fi, mi)
            if nxt is None:
                nxt = self._find_pred(by_val.get(remaining), fi, mi)
                if nxt is None:
                    wit.complete = False
                    break
                chain[-1] = dataclasses.replace(hop, relinked=True)
                wit.contiguous = False
            fi, mi = nxt
        wit.hops = list(reversed(chain))
        return wit

    @staticmethod
    def _find_pred(
        candidates: list[tuple[int, int]] | None, fi: int, mi: int
    ) -> tuple[int, int] | None:
        """Latest candidate hop strictly before ``(fi, mi)``."""
        if not candidates:
            return None
        for cfi, cmi in reversed(candidates):
            if cfi < fi or (cfi == fi and cmi < mi):
                return (cfi, cmi)
        return None

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def cell_energy(self) -> dict[tuple[int, int], int]:
        """Total wire energy touching each cell (injected + absorbed)."""
        out = dict(self.energy_out)
        for k, v in self.energy_in.items():
            out[k] = out.get(k, 0) + v
        return out

    def link_load(self) -> dict[tuple[int, int], int]:
        """Per-cell link pressure: load summed over a cell's incident links."""
        out: dict[tuple[int, int], int] = {}
        for (r, c), v in self.hlinks.items():
            for cell in ((r, c), (r, c + 1)):
                out[cell] = out.get(cell, 0) + v
        for (r, c), v in self.vlinks.items():
            for cell in ((r, c), (r + 1, c)):
                out[cell] = out.get(cell, 0) + v
        return out

    def top_cells(
        self, k: int = 8, by: str = "energy"
    ) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` heaviest cells, descending (ties broken by coordinate)."""
        grids = {
            "energy": self.cell_energy,
            "sent": lambda: self.sent,
            "received": lambda: self.received,
            "links": self.link_load,
        }
        if by not in grids:
            raise ValueError(f"unknown cell metric {by!r}; one of {sorted(grids)}")
        cells = grids[by]()
        return sorted(cells.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def hotspot_stats(self, by: str = "energy") -> dict:
        """Skew summary of a cell grid over its occupied bounding box.

        ``gini`` and ``max_mean_skew`` (max / mean over the bounding box,
        zero cells included) quantify congestion: a spatially flat algorithm
        (the 2D scan) sits near 0 / 1, tree patterns concentrate load.
        """
        cells = {
            "energy": self.cell_energy,
            "sent": lambda: self.sent,
            "received": lambda: self.received,
            "links": self.link_load,
        }[by]()
        dense, origin = grid_to_dense(cells)
        flat = dense.ravel()
        if not flat.size or flat.sum() == 0:
            return {
                "metric": by, "bbox": None, "active_cells": 0, "total": 0,
                "max": 0, "mean": 0.0, "gini": 0.0, "max_mean_skew": 0.0,
            }
        mean = float(flat.mean())
        return {
            "metric": by,
            "bbox": [origin[0], origin[1],
                     origin[0] + dense.shape[0] - 1, origin[1] + dense.shape[1] - 1],
            "active_cells": int((flat > 0).sum()),
            "total": int(flat.sum()),
            "max": int(flat.max()),
            "mean": round(mean, 3),
            "gini": round(gini(flat), 4),
            "max_mean_skew": round(float(flat.max()) / mean, 3) if mean else 0.0,
        }

    def summary(self, top_k: int = 8) -> dict:
        """JSON-safe profile digest (the bench document's ``profile`` section)."""
        out: dict = {
            "total_energy": self.total_energy,
            "total_messages": self.total_messages,
            "batches": self.tick,
            "cells": self.hotspot_stats("energy"),
            "top_cells": [
                {"cell": list(cell), "energy": e}
                for cell, e in self.top_cells(top_k, by="energy")
            ],
            "witness_overflow": self.witness_overflow,
        }
        if self.links:
            loads = list(self.hlinks.values()) + list(self.vlinks.values())
            out["links"] = {
                "horizontal": len(self.hlinks),
                "vertical": len(self.vlinks),
                "max_load": max(loads) if loads else 0,
                "gini": round(gini(loads), 4) if loads else 0.0,
            }
        if self.witnesses and not self.witness_overflow:
            dw = self.depth_witness()
            sw = self.distance_witness()
            out["witness"] = {
                "depth": dw.summary() if dw else None,
                "distance": sw.summary() if sw else None,
            }
        return out
