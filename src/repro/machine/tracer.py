"""Optional per-message trace recording.

For small inputs, a :class:`Tracer` keeps every message's endpoints.  Tests use
it to audit model assumptions that the batched execution abstracts away:

* the per-round *inbox* of a processor stays O(1) — in a constant-memory
  machine a processor cannot buffer an unbounded number of simultaneous
  messages (paper, Sections I.D and III);
* message patterns match the figures (e.g. the Fig. 1 scan tree edges).

Tracing is off by default; it materializes Python-level state per batch and is
meant for ``n`` up to a few thousand.
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

import numpy as np

__all__ = ["Tracer", "MessageBatch", "jsonl_sink"]


def jsonl_sink(fh: IO[str]):
    """A streaming :class:`Tracer` sink writing one JSON record per message.

    The emitted lines are :meth:`Tracer.from_jsonl`-compatible, so a
    streamed trace round-trips exactly like a retained one.
    """

    def write(batch: "MessageBatch") -> None:
        dists = batch.distances()
        for i in range(len(batch)):
            fh.write(
                json.dumps(
                    {
                        "round": batch.round,
                        "phase": batch.phase,
                        "kind": batch.kind,
                        "src": [int(batch.src_rows[i]), int(batch.src_cols[i])],
                        "dst": [int(batch.dst_rows[i]), int(batch.dst_cols[i])],
                        "dist": int(dists[i]),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )

    return write


@dataclass(frozen=True)
class MessageBatch:
    """One vectorized ``send``/``relay``: parallel messages issued together.

    ``phase`` is the machine's active phase path at issue time (e.g.
    ``"mergesort2d/merge2d"``, empty at top level), ``kind`` is ``"send"``
    for batched moves and ``"relay"`` for sequential probe chains.
    """

    src_rows: np.ndarray
    src_cols: np.ndarray
    dst_rows: np.ndarray
    dst_cols: np.ndarray
    round: int
    phase: str = ""
    kind: str = "send"

    def __len__(self) -> int:
        return len(self.src_rows)

    def distances(self) -> np.ndarray:
        return np.abs(self.dst_rows - self.src_rows) + np.abs(self.dst_cols - self.src_cols)


@dataclass
class Tracer:
    """Message recorder; by default it retains every batch in :attr:`batches`.

    **Streaming mode** (for profiling runs whose traces do not fit in
    memory): pass ``retain=False`` plus a ``sink`` — each batch is handed to
    the sink callable and then dropped, so memory stays O(1) in the trace
    length.  A :meth:`SpatialProfiler.add_batch
    <repro.machine.profiler.SpatialProfiler.add_batch>` bound method makes a
    natural sink (folds the trace into traffic grids as it streams), as does
    :func:`jsonl_sink` for on-the-fly JSONL export.  The limit that remains:
    batch-retrospective queries (``to_jsonl``, ``energy_by_cell``,
    ``max_inbox_per_round`` — and the profiler's critical-path *witnesses*,
    which need per-value metadata no ``MessageBatch`` carries) are only
    available while batches are retained; witness extraction is additionally
    capped at the profiler's ``max_witness_messages`` retention limit.
    """

    batches: list[MessageBatch] = field(default_factory=list)
    #: optional callable receiving each recorded :class:`MessageBatch`
    sink: "object | None" = None
    #: keep batches in :attr:`batches` (disable for streaming runs)
    retain: bool = True

    def record(
        self,
        src_rows: np.ndarray,
        src_cols: np.ndarray,
        dst_rows: np.ndarray,
        dst_cols: np.ndarray,
        round_idx: int,
        phase: str = "",
        kind: str = "send",
    ) -> None:
        moved = (src_rows != dst_rows) | (src_cols != dst_cols)
        if not moved.any():
            return
        batch = MessageBatch(
            src_rows[moved].copy(),
            src_cols[moved].copy(),
            dst_rows[moved].copy(),
            dst_cols[moved].copy(),
            round_idx,
            phase,
            kind,
        )
        if self.sink is not None:
            self.sink(batch)  # type: ignore[operator]
        if self.retain:
            self.batches.append(batch)

    # ------------------------------------------------------------------
    # structured records / JSONL export
    # ------------------------------------------------------------------
    def records(self) -> Iterator[dict]:
        """One structured dict per *message* (not per batch), in issue order."""
        for b in self.batches:
            dists = b.distances()
            for i in range(len(b)):
                yield {
                    "round": b.round,
                    "phase": b.phase,
                    "kind": b.kind,
                    "src": [int(b.src_rows[i]), int(b.src_cols[i])],
                    "dst": [int(b.dst_rows[i]), int(b.dst_cols[i])],
                    "dist": int(dists[i]),
                }

    def to_jsonl(self, target: str | Path | IO[str]) -> int:
        """Write one JSON record per message; returns the record count."""
        if hasattr(target, "write"):
            return self._write_jsonl(target)  # type: ignore[arg-type]
        with open(target, "w") as fh:
            return self._write_jsonl(fh)

    def _write_jsonl(self, fh: IO[str]) -> int:
        count = 0
        for rec in self.records():
            fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            count += 1
        return count

    @classmethod
    def from_jsonl(cls, source: str | Path | IO[str]) -> "Tracer":
        """Rebuild a tracer from a JSONL trace (messages regroup into batches
        by consecutive ``(round, phase, kind)``).

        Corrupt or truncated lines — the usual aftermath of a process dying
        mid-write — are skipped with a :class:`RuntimeWarning` and the valid
        prefix/remainder still loads as a partial trace, instead of the whole
        file being rejected with ``json.JSONDecodeError``.
        """
        if hasattr(source, "read"):
            lines = source.read().splitlines()  # type: ignore[union-attr]
        else:
            lines = Path(source).read_text().splitlines()
        tracer = cls()
        pending: list[dict] = []

        def flush() -> None:
            if not pending:
                return
            tracer.batches.append(
                MessageBatch(
                    np.array([r["src"][0] for r in pending], dtype=np.int64),
                    np.array([r["src"][1] for r in pending], dtype=np.int64),
                    np.array([r["dst"][0] for r in pending], dtype=np.int64),
                    np.array([r["dst"][1] for r in pending], dtype=np.int64),
                    pending[0]["round"],
                    pending[0]["phase"],
                    pending[0]["kind"],
                )
            )
            pending.clear()

        bad_lines: list[int] = []
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                # touch every required field so structurally-broken records
                # (e.g. a truncated "dst" pair) are rejected here, not deep
                # inside flush() with an opaque error
                _ = (rec["round"], rec["phase"], rec["kind"])
                _ = (rec["src"][0], rec["src"][1], rec["dst"][0], rec["dst"][1])
            except (json.JSONDecodeError, KeyError, IndexError, TypeError):
                bad_lines.append(lineno)
                continue
            if pending and (
                rec["round"] != pending[0]["round"]
                or rec["phase"] != pending[0]["phase"]
                or rec["kind"] != pending[0]["kind"]
            ):
                flush()
            pending.append(rec)
        flush()
        if bad_lines:
            shown = ", ".join(str(ln) for ln in bad_lines[:5])
            more = "" if len(bad_lines) <= 5 else f" (+{len(bad_lines) - 5} more)"
            warnings.warn(
                f"skipped {len(bad_lines)} corrupt/truncated trace line(s) "
                f"at line {shown}{more}; loaded a partial trace of "
                f"{tracer.total_messages()} messages",
                RuntimeWarning,
                stacklevel=2,
            )
        return tracer

    def energy_by_phase(self) -> dict[str, int]:
        """Total wire length attributed to each phase path seen in the trace."""
        out: dict[str, int] = {}
        for b in self.batches:
            out[b.phase] = out.get(b.phase, 0) + int(b.distances().sum())
        return out

    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(len(b) for b in self.batches)

    def total_energy(self) -> int:
        return int(sum(b.distances().sum() for b in self.batches))

    def max_inbox_per_round(self) -> int:
        """Largest number of messages received by one processor in one batch.

        A batched ``send`` corresponds to one parallel communication round;
        in a constant-memory machine each processor may receive only O(1)
        messages per round.  Core algorithm tests assert a small constant.
        """
        worst = 0
        for b in self.batches:
            counts = Counter(zip(b.dst_rows.tolist(), b.dst_cols.tolist()))
            if counts:
                worst = max(worst, max(counts.values()))
        return worst

    def max_outbox_per_round(self) -> int:
        """Largest number of messages sent by one processor in one batch."""
        worst = 0
        for b in self.batches:
            counts = Counter(zip(b.src_rows.tolist(), b.src_cols.tolist()))
            if counts:
                worst = max(worst, max(counts.values()))
        return worst

    def energy_by_cell(self, attribute_to: str = "source") -> dict[tuple[int, int], int]:
        """Attribute each message's energy to its source (or destination) cell.

        The resulting map is the spatial *load profile* of an algorithm —
        the Fig.-style picture of where wire length is spent.  Spatially
        local algorithms (the 2D scan) show flat profiles; 1D-tree patterns
        concentrate load along their pairing axis.
        """
        if attribute_to not in ("source", "destination"):
            raise ValueError("attribute_to must be 'source' or 'destination'")
        out: dict[tuple[int, int], int] = {}
        for b in self.batches:
            rows = b.src_rows if attribute_to == "source" else b.dst_rows
            cols = b.src_cols if attribute_to == "source" else b.dst_cols
            for r, c, d in zip(rows.tolist(), cols.tolist(), b.distances().tolist()):
                key = (r, c)
                out[key] = out.get(key, 0) + d
        return out

    def messages_by_round(self) -> dict[int, int]:
        """Message count per ``send`` batch round (parallelism profile)."""
        out: dict[int, int] = {}
        for b in self.batches:
            out[b.round] = out.get(b.round, 0) + len(b)
        return out

    def edges(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """All (src, dst) pairs, for structural assertions and figures."""
        out: list[tuple[tuple[int, int], tuple[int, int]]] = []
        for b in self.batches:
            out.extend(
                ((int(sr), int(sc)), (int(dr), int(dc)))
                for sr, sc, dr, dc in zip(b.src_rows, b.src_cols, b.dst_rows, b.dst_cols)
            )
        return out
