"""Spatial Computer Model substrate: grid geometry, Z-order curves, the
cost-metering machine simulator, fault injection and recovery, message
tracing, and data layouts."""

from .faults import (
    RECOVERY_PHASE,
    FaultConfigError,
    FaultPlan,
    ModelViolation,
    RecoveryStats,
)
from .chrometrace import chrome_trace_events, write_chrome_trace
from .geometry import Region, manhattan, manhattan_arrays
from .heatmap import render_ascii, render_svg, write_heatmap
from .machine import (
    DEFAULT_WORD_BUDGET,
    ReferenceMachine,
    SpatialMachine,
    TrackedArray,
    combine,
    concat_tracked,
)
from .metrics import CostReport, CostTree, MachineStats, PhaseNode
from .profiler import SpatialProfiler, Witness, WitnessHop, gini, grid_to_dense
from .tracer import MessageBatch, Tracer, jsonl_sink
from .zorder import (
    is_power_of_two,
    zorder_coords,
    zorder_curve_energy,
    zorder_decode,
    zorder_encode,
)

__all__ = [
    "RECOVERY_PHASE",
    "FaultConfigError",
    "FaultPlan",
    "ModelViolation",
    "RecoveryStats",
    "DEFAULT_WORD_BUDGET",
    "Region",
    "manhattan",
    "manhattan_arrays",
    "SpatialMachine",
    "ReferenceMachine",
    "TrackedArray",
    "combine",
    "concat_tracked",
    "CostReport",
    "CostTree",
    "PhaseNode",
    "MachineStats",
    "Tracer",
    "MessageBatch",
    "jsonl_sink",
    "SpatialProfiler",
    "Witness",
    "WitnessHop",
    "gini",
    "grid_to_dense",
    "render_ascii",
    "render_svg",
    "write_heatmap",
    "chrome_trace_events",
    "write_chrome_trace",
    "zorder_encode",
    "zorder_decode",
    "zorder_coords",
    "zorder_curve_energy",
    "is_power_of_two",
]
