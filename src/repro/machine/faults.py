"""Deterministic fault injection, recovery, and strict model validation.

The Spatial Computer Model assumes a perfect, unbounded fabric; the hardware
it abstracts (wafer-scale and dataflow accelerators) must tolerate dead
processing elements and lost or corrupted flits.  This module lets the
simulator *exercise* that gap without giving up determinism or exactness:

* :class:`FaultPlan` — a seeded description of what goes wrong: rectangular
  **dead regions** (failed PEs), a per-message **drop** probability (flits
  lost in transit, detected by timeout), and a per-message **corruption**
  probability (flits delivered damaged, detected by checksum and NACKed).
  All randomness flows through the plan's explicit
  :class:`numpy.random.Generator`, so a given ``(plan seed, algorithm seed)``
  pair always produces the identical fault sequence and the identical costs.

* **Recovery** — :meth:`SpatialMachine.send` consults the plan and repairs
  every fault transparently:

  - a value addressed to a dead cell is physically hosted by that cell's
    *spare* (the nearest live cell outside every dead rectangle,
    deterministic tie-break), mirroring the compile-time sparing maps of
    wafer-scale parts.  Sparing is **address-transparent**: the value keeps
    its logical coordinate (algorithms' coordinate arithmetic is
    undisturbed) and every message touching a dead logical address pays the
    extra Manhattan wire to/from the spare;
  - a message whose XY route crosses a dead rectangle **detours** around
    the nearer side; the extra wire length is charged to energy and to the
    value's chain distance;
  - a dropped or corrupted message is **resent** (exponential backoff,
    geometric number of attempts, capped at :attr:`FaultPlan.max_retries`);
    every failed attempt is one more real message: it burns the full wire
    energy again, deepens the value's dependency chain by one, and adds the
    wire length to its chain distance.

  Retry, detour, and sparing charges land in the machine's *flat* counters (totals
  stay honest) and are additionally attributed to a dedicated top-level
  ``recovery`` phase of the :class:`~repro.machine.metrics.CostTree`, so
  ``repro report --per-phase`` shows exactly what sabotage cost.
  Payloads are never altered: algorithms remain bit-identical under any
  plan, only their measured costs inflate.

* **Strict validation** — ``SpatialMachine(strict=True)`` enforces the
  model's own contract online: any processor receiving more than
  ``word_budget`` messages in a single batched round violates the O(1)
  words-per-processor assumption and raises :class:`ModelViolation`
  (the same audit :meth:`Tracer.max_inbox_per_round` performs offline);
  non-finite / non-integral coordinates and NaN payloads entering via
  ``place`` fail fast with actionable errors instead of silently turning
  into garbage int64 offsets that corrupt every cost metric.

See ``docs/FAULTS.md`` for the full semantics and the cost-accounting rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .geometry import Region

__all__ = [
    "FaultPlan",
    "RecoveryStats",
    "ModelViolation",
    "FaultConfigError",
    "RECOVERY_PHASE",
    "resolve_spares",
    "spare_extras",
    "detour_extras",
    "sample_failures",
]

#: name of the CostTree child that recovery charges are attributed to.
RECOVERY_PHASE = "recovery"


class ModelViolation(RuntimeError):
    """A program broke a Spatial Computer Model invariant (strict mode)."""


class FaultConfigError(ValueError):
    """A :class:`FaultPlan` is malformed or unsatisfiable for this traffic."""


@dataclass
class RecoveryStats:
    """Running totals of what fault recovery cost one machine.

    All counters are cumulative over the machine's lifetime; ``as_dict``
    gives the JSON-friendly form embedded in chaos benchmark results.
    """

    #: messages lost in transit and detected by timeout
    dropped: int = 0
    #: messages delivered corrupt, detected by checksum, and NACKed
    corrupted: int = 0
    #: total retransmissions issued (== dropped + corrupted)
    retries: int = 0
    #: wire length burned by failed attempts (each retry re-pays the wire)
    retry_energy: int = 0
    #: messages that routed around at least one dead rectangle
    detoured: int = 0
    #: extra wire length due to detours around dead regions
    detour_energy: int = 0
    #: messages redirected to a spare because their destination was dead
    spared: int = 0
    #: extra wire length to/from spare cells hosting dead logical addresses
    spare_energy: int = 0
    #: simulated exponential-backoff delay, in backoff ticks
    backoff_ticks: int = 0
    #: worst delivery-attempt count for any single message
    max_attempts: int = 1

    def as_dict(self) -> dict[str, int]:
        return {
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "retries": self.retries,
            "retry_energy": self.retry_energy,
            "detoured": self.detoured,
            "detour_energy": self.detour_energy,
            "spared": self.spared,
            "spare_energy": self.spare_energy,
            "backoff_ticks": self.backoff_ticks,
            "max_attempts": self.max_attempts,
        }

    @property
    def total_recovery_energy(self) -> int:
        return self.retry_energy + self.detour_energy + self.spare_energy


@dataclass
class FaultPlan:
    """A deterministic, seeded description of fabric faults.

    Parameters
    ----------
    rng:
        The generator every probabilistic fault decision draws from.  Pass an
        explicitly seeded generator (or use :meth:`seeded`); the machine
        never touches global NumPy state.
    dead_regions:
        Rectangles of failed processors.  Values addressed to a dead cell are
        hosted by its spare (nearest live cell); routes crossing a rectangle
        detour around it.
    drop_prob:
        Per-attempt probability that a message is lost in transit.
    corrupt_prob:
        Per-attempt probability that a message arrives corrupted (detected,
        then retransmitted like a drop).
    max_retries:
        Hard cap on retransmissions per message; the model guarantees
        delivery at the latest on attempt ``max_retries + 1`` (a bounded
        escalation, e.g. a reliable control network).  Keeps every cost
        finite and the constant-factor inflation bound provable.
    backoff_base:
        Ticks of simulated wait before the first retry; doubles per attempt.
        Accounted in :attr:`RecoveryStats.backoff_ticks` (wall-clock-like
        latency is not part of the model's energy/depth/distance metrics).
    """

    rng: np.random.Generator
    dead_regions: tuple[Region, ...] = ()
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    max_retries: int = 16
    backoff_base: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.rng, np.random.Generator):
            raise FaultConfigError(
                f"FaultPlan.rng must be a numpy.random.Generator, got "
                f"{type(self.rng).__name__}; use FaultPlan.seeded(seed, ...) "
                "or np.random.default_rng(seed)"
            )
        for name in ("drop_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not (0.0 <= p < 1.0):
                raise FaultConfigError(f"{name} must be in [0, 1), got {p}")
        if self.failure_prob >= 1.0:
            raise FaultConfigError(
                f"combined failure probability must stay below 1 "
                f"(drop={self.drop_prob}, corrupt={self.corrupt_prob})"
            )
        if self.max_retries < 1:
            raise FaultConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff_base < 0:
            raise FaultConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        self.dead_regions = tuple(self.dead_regions)
        for reg in self.dead_regions:
            if not isinstance(reg, Region):
                raise FaultConfigError(f"dead_regions entries must be Region, got {reg!r}")
            if reg.size == 0:
                raise FaultConfigError(f"dead region must be non-empty: {reg}")

    # ------------------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, **kwargs) -> "FaultPlan":
        """A plan whose generator is freshly seeded with ``seed``."""
        return cls(rng=np.random.default_rng(seed), **kwargs)

    @property
    def failure_prob(self) -> float:
        """Per-attempt probability that a message needs retransmission."""
        return 1.0 - (1.0 - self.drop_prob) * (1.0 - self.corrupt_prob)

    @property
    def injects_faults(self) -> bool:
        return bool(self.dead_regions) or self.failure_prob > 0.0

    def dead_mask(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean mask of coordinates lying inside any dead region."""
        mask = np.zeros(len(rows), dtype=bool)
        for reg in self.dead_regions:
            mask |= reg.contains(rows, cols)
        return mask

    def describe(self) -> dict:
        """JSON-friendly summary of the plan (generator state excluded)."""
        return {
            "dead_regions": [
                [r.row, r.col, r.height, r.width] for r in self.dead_regions
            ],
            "drop_prob": self.drop_prob,
            "corrupt_prob": self.corrupt_prob,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
        }


# ----------------------------------------------------------------------
# dead-region handling: sparing and detours
# ----------------------------------------------------------------------
def resolve_spares(
    plan: FaultPlan, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Redirect coordinates inside dead regions to their spare cells.

    The spare of a dead cell is the nearest cell just outside its rectangle
    (deterministic tie-break order: left, right, above, below).  Overlapping
    rectangles are resolved iteratively; an unsatisfiable configuration (a
    cell walled in on every side by further dead rectangles for more passes
    than rectangles exist) raises :class:`FaultConfigError`.

    Returns ``(rows, cols, spared_mask)`` with fresh arrays when anything
    moved (the inputs are never mutated).
    """
    if not plan.dead_regions:
        return rows, cols, np.zeros(len(rows), dtype=bool)
    spared = np.zeros(len(rows), dtype=bool)
    out_r, out_c = rows, cols
    max_passes = 4 * len(plan.dead_regions)
    for _ in range(max_passes):
        dead = plan.dead_mask(out_r, out_c)
        if not dead.any():
            return out_r, out_c, spared
        if out_r is rows:
            out_r, out_c = rows.copy(), cols.copy()
        for reg in plan.dead_regions:
            m = reg.contains(out_r, out_c)
            if not m.any():
                continue
            r, c = out_r[m], out_c[m]
            exit_left = c - reg.col + 1
            exit_right = reg.col_end - c
            exit_up = r - reg.row + 1
            exit_down = reg.row_end - r
            best = np.minimum.reduce([exit_left, exit_right, exit_up, exit_down])
            nr, nc = r.copy(), c.copy()
            go_left = exit_left == best
            go_right = ~go_left & (exit_right == best)
            go_up = ~go_left & ~go_right & (exit_up == best)
            go_down = ~(go_left | go_right | go_up)
            nc[go_left] = reg.col - 1
            nc[go_right] = reg.col_end
            nr[go_up] = reg.row - 1
            nr[go_down] = reg.row_end
            out_r[m], out_c[m] = nr, nc
            spared |= m
    if plan.dead_mask(out_r, out_c).any():
        raise FaultConfigError(
            "could not find live spare cells: dead regions overlap too deeply "
            f"({len(plan.dead_regions)} rectangles)"
        )
    return out_r, out_c, spared


def spare_extras(
    plan: FaultPlan, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-endpoint wire surcharge for coordinates hosted by a spare cell.

    Sparing is *address-transparent*: a value addressed to a dead cell keeps
    its logical coordinate — so coordinate arithmetic inside algorithms (the
    All-Pairs Sort's subgrid regrouping, Z-order layouts, ...) is undisturbed
    — while being physically hosted by the nearest live cell just outside the
    rectangle (:func:`resolve_spares` picks the spare and validates that one
    exists).  Every message that starts or ends at a dead logical address
    pays the extra Manhattan wire to/from the physical spare.

    Returns ``(extra, spared_mask)``; ``extra`` is int64, zero for live
    coordinates.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    sr, sc, spared = resolve_spares(plan, rows, cols)
    if not spared.any():
        return np.zeros(len(rows), dtype=np.int64), spared
    extra = np.abs(sr - rows) + np.abs(sc - cols)
    return extra.astype(np.int64), spared


def detour_extras(
    dead_regions: Sequence[Region],
    src_rows: np.ndarray,
    src_cols: np.ndarray,
    dst_rows: np.ndarray,
    dst_cols: np.ndarray,
) -> np.ndarray:
    """Extra wire length each message pays to route around dead rectangles.

    Messages follow XY (dimension-ordered) routes: first along the column of
    the source (rows change), then along the row of the destination (columns
    change).  A leg that would pass through a dead rectangle detours around
    the rectangle's nearer side, paying twice the perpendicular shift.  A
    message crossing ``k`` rectangles pays ``k`` detours — a deterministic
    upper bound, not a maze router.
    """
    n = len(src_rows)
    extra = np.zeros(n, dtype=np.int64)
    if not dead_regions or n == 0:
        return extra
    rlo = np.minimum(src_rows, dst_rows)
    rhi = np.maximum(src_rows, dst_rows)
    clo = np.minimum(src_cols, dst_cols)
    chi = np.maximum(src_cols, dst_cols)
    for reg in dead_regions:
        # vertical leg: at column src_col, spanning rows [rlo, rhi]
        v_cross = (
            (src_cols >= reg.col)
            & (src_cols < reg.col_end)
            & (rhi >= reg.row)
            & (rlo < reg.row_end)
            & (src_rows != dst_rows)
        )
        if v_cross.any():
            shift = np.minimum(
                src_cols - reg.col + 1, reg.col_end - src_cols
            )
            extra += np.where(v_cross, 2 * shift, 0)
        # horizontal leg: at row dst_row, spanning columns [clo, chi]
        h_cross = (
            (dst_rows >= reg.row)
            & (dst_rows < reg.row_end)
            & (chi >= reg.col)
            & (clo < reg.col_end)
            & (src_cols != dst_cols)
        )
        if h_cross.any():
            shift = np.minimum(dst_rows - reg.row + 1, reg.row_end - dst_rows)
            extra += np.where(h_cross, 2 * shift, 0)
    return extra


# ----------------------------------------------------------------------
# drop / corruption sampling
# ----------------------------------------------------------------------
def sample_failures(
    plan: FaultPlan, count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Failed delivery attempts for ``count`` messages, split by cause.

    Returns ``(failures, dropped, corrupted)`` int64 arrays: per message the
    number of failed attempts before the successful delivery (geometric with
    the plan's combined failure probability, capped at ``max_retries``), and
    its decomposition into timeout-detected drops and checksum-detected
    corruptions.  Consumes ``plan.rng`` — deterministic for a fixed seed and
    message stream.
    """
    p_fail = plan.failure_prob
    if p_fail <= 0.0 or count == 0:
        zeros = np.zeros(count, dtype=np.int64)
        return zeros, zeros.copy(), zeros.copy()
    # geometric(p_success) = attempts to first success, so failures = g - 1
    failures = plan.rng.geometric(1.0 - p_fail, size=count).astype(np.int64) - 1
    np.minimum(failures, plan.max_retries, out=failures)
    # attribute each failure: it was a drop with probability
    # drop / (drop + (1-drop)*corrupt), else a detected corruption
    # roundoff can push the ratio a hair past 1.0 when corrupt_prob == 0
    p_drop_given_fail = min(1.0, plan.drop_prob / p_fail)
    dropped = plan.rng.binomial(failures, p_drop_given_fail).astype(np.int64)
    corrupted = failures - dropped
    return failures, dropped, corrupted


def backoff_ticks(plan: FaultPlan, failures: np.ndarray) -> int:
    """Total simulated exponential-backoff wait for the given failure counts.

    A message retried ``f`` times waits ``base * (2^f - 1)`` ticks (the sum
    of ``base * 2^k`` over its failed attempts).
    """
    if plan.backoff_base == 0 or not failures.size:
        return 0
    f = failures[failures > 0]
    if not f.size:
        return 0
    return int(plan.backoff_base * ((1 << f.astype(np.int64)) - 1).sum())
