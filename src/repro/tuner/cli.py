"""`repro tune` — run the pruned auto-tuner and maintain the plan DB.

Examples::

    repro tune                               # sort, default sizes, EDP
    repro tune --algo-class sort --algo-class scan --metric energy -n 64
    repro tune --quick --brute-force         # CI: verify pruning == brute force
    repro tune --quick --regen               # rewrite benchmarks/plans/plan_db.json

Each requested ``(algo_class, n, metric)`` resolves DB-first: a stored plan
whose ``code_version`` and ``space_hash`` match the current tree is served
as-is (source ``db``); anything missing or stale is re-tuned (source
``tuned``).  ``--regen`` forces re-tuning and persists the results.
"""

from __future__ import annotations

import json
import sys

from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from .bounds import TUNE_METRICS
from .evaluate import Evaluator
from .plandb import DEFAULT_PLAN_DB, PlanDB
from .space import ALGO_CLASSES, SearchSpace
from .tuner import TuneError, TuneRequest, tune_one

__all__ = ["add_tune_parser"]

#: default sweep sizes per class; ``--quick`` keeps CI at a handful of points
DEFAULT_SIZES = {"sort": (16, 64, 256), "scan": (64, 256, 1024), "spmv": (16, 64)}
QUICK_SIZES = {"sort": (64,), "scan": (64,), "spmv": (16,)}

_COLUMNS = (
    "class", "n", "metric", "best", "energy", "depth", "edp",
    "space", "pruned", "eval", "source",
)


def _row(plan, source: str) -> dict:
    m = plan.best["metrics"]
    return {
        "class": plan.algo_class,
        "n": plan.n,
        "metric": plan.metric,
        "best": plan.best["label"],
        "energy": m["energy"],
        "depth": m["max_depth"],
        "edp": m["edp"],
        "space": plan.counts["total"],
        "pruned": plan.counts["dominated"] + plan.counts["bound_pruned"],
        "eval": plan.counts["evaluated"],
        "source": source,
    }


def _print_table(rows: list[dict]) -> None:
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) if rows else len(c)
        for c in _COLUMNS
    }
    header = "  ".join(c.ljust(widths[c]) for c in _COLUMNS)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in _COLUMNS))


def _cmd_tune(args) -> int:
    classes = list(dict.fromkeys(args.algo_class)) or ["sort"]
    sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        evaluator = Evaluator(
            args.bench_dir or None, cache, jobs=args.jobs, timeout=args.timeout
        )
    except (RuntimeError, FileNotFoundError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    db = None if args.no_db else PlanDB(args.plan_db)
    rows: list[dict] = []
    plans: list = []
    mismatches: list[str] = []
    for algo_class in classes:
        for n in (args.n or sizes[algo_class]):
            request = TuneRequest(
                algo_class=algo_class, n=int(n), metric=args.metric, seed=args.seed
            )
            space_hash = SearchSpace.for_request(algo_class, int(n)).hash()
            plan, source = None, "tuned"
            if db is not None and not args.regen:
                plan = db.get(request, evaluator.code_version, space_hash)
                if plan is not None:
                    source = "db"
            if plan is None:
                try:
                    plan = tune_one(request, evaluator)
                except TuneError as e:
                    print(f"error: {e}", file=sys.stderr)
                    return 2
                if db is not None:
                    db.put(plan)
            if args.brute_force:
                brute = tune_one(request, evaluator, brute=True)
                if plan.best != brute.best:
                    mismatches.append(
                        f"{request.key()}: pruned={plan.best['label']} "
                        f"value={plan.best['value']} vs "
                        f"brute={brute.best['label']} value={brute.best['value']}"
                    )
            plans.append(plan)
            rows.append(_row(plan, source))

    _print_table(rows)
    evaluated = sum(r["eval"] for r in rows)
    pruned = sum(r["pruned"] for r in rows)
    total = sum(r["space"] for r in rows)
    frac = pruned / total if total else 0.0
    print(
        f"\n{total} configuration(s): {pruned} pruned analytically ({frac:.0%}), "
        f"{evaluated} simulated ({evaluator.executed} executed, "
        f"{evaluator.cache_hits} cache hits)"
    )

    if db is not None and (args.regen or any(r["source"] == "tuned" for r in rows)):
        db.save()
        print(f"plan DB: {db.path} ({len(db)} plan(s))")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump([p.as_dict() for p in plans], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"plan table: {args.out}")
    if args.brute_force:
        if mismatches:
            print("\nBRUTE-FORCE MISMATCH:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"brute-force check: {len(plans)} plan(s) bit-identical")
    return 0


def add_tune_parser(sub) -> None:
    sp = sub.add_parser(
        "tune",
        help="pruned auto-tuner over (variant, layout, block) configurations",
    )
    sp.add_argument(
        "--algo-class",
        action="append",
        default=[],
        choices=ALGO_CLASSES,
        help="class to tune; repeatable (default: sort)",
    )
    sp.add_argument("--metric", default="edp", choices=TUNE_METRICS,
                    help="objective to minimize (default: energy-depth product)")
    sp.add_argument("-n", "--n", type=int, action="append", default=[],
                    help="input size; repeatable (default: per-class sweep)")
    sp.add_argument("--seed", type=int, default=0, help="workload seed")
    sp.add_argument("--quick", action="store_true",
                    help="one small size per class (CI grid)")
    sp.add_argument("--jobs", type=int, default=0,
                    help="parallel evaluation processes (0: in-process)")
    sp.add_argument("--timeout", type=float, default=120.0,
                    help="per-evaluation timeout with --jobs")
    sp.add_argument("--brute-force", action="store_true",
                    help="also evaluate every configuration and fail (exit 1) "
                    "unless the pruned plan is bit-identical")
    sp.add_argument("--plan-db", default=DEFAULT_PLAN_DB,
                    help="persistent plan database path")
    sp.add_argument("--no-db", action="store_true",
                    help="ignore the plan database entirely")
    sp.add_argument("--regen", action="store_true",
                    help="re-tune everything and rewrite the plan database")
    sp.add_argument("--out", default="",
                    help="write the full plan table (all configs + bounds) as JSON")
    sp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help="content-addressed result cache shared with bench/serve")
    sp.add_argument("--no-cache", action="store_true")
    sp.add_argument("--bench-dir", default="",
                    help="benchmarks directory (default: repo's)")
    sp.set_defaults(func=_cmd_tune)
