"""repro.tuner — pruned auto-tuning over (algorithm, layout, block factor).

The tuner answers "which variant should run this request?" for the repo's
primitive classes (sorting, scan, SpMV).  It enumerates the registered
configurations (:mod:`~repro.tuner.space`), discards the ones whose
admissible analytic lower bounds (:mod:`~repro.tuner.bounds`) cannot beat
the incumbent, measures the survivors through the shared runner executor
and content-addressed cache (:mod:`~repro.tuner.evaluate`), and records the
winner — with the full search table and energy/depth Pareto front — in a
persistent, staleness-checked :class:`~repro.tuner.plandb.PlanDB`.

Three front doors:

* ``repro tune`` — CLI sweep + table, ``--regen`` rewrites the checked-in DB;
* :func:`plan_for` — library API, DB-first with tune-on-miss;
* ``POST /plan`` on the service, which also powers ``"algo": "auto:sort"``
  dispatch in ``POST /run``.

See ``docs/TUNER.md`` for the pruning contract and the plan schema.
"""

from __future__ import annotations

from pathlib import Path

from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from .bounds import TUNE_METRICS, config_bounds, is_dominated, metric_value
from .evaluate import TUNER_SUITE, Evaluator
from .plandb import DEFAULT_PLAN_DB, PlanDB
from .space import ALGO_CLASSES, SearchSpace, TuneConfig
from .tuner import TuneError, TunePlan, TuneRequest, tune_one
from .variants import Variant, register_variant, run_config, variants_for

__all__ = [
    "ALGO_CLASSES",
    "TUNE_METRICS",
    "TUNER_SUITE",
    "DEFAULT_PLAN_DB",
    "Evaluator",
    "PlanDB",
    "SearchSpace",
    "TuneConfig",
    "TuneError",
    "TunePlan",
    "TuneRequest",
    "Variant",
    "config_bounds",
    "is_dominated",
    "metric_value",
    "plan_for",
    "register_variant",
    "run_config",
    "tune_one",
    "variants_for",
]


def plan_for(
    algo_class: str,
    n: int,
    metric: str = "edp",
    *,
    seed: int = 0,
    db_path: str | Path | None = None,
    bench_dir: str | Path | None = None,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    jobs: int = 0,
    persist: bool = False,
) -> TunePlan:
    """Best plan for ``(algo_class, n, metric)``: DB hit if fresh, else tune.

    A stored plan is honoured only when its ``code_version`` and
    ``space_hash`` match the current tree; otherwise the request is re-tuned
    (and written back when ``persist=True`` and a DB path is given).
    """
    request = TuneRequest(algo_class=algo_class, n=int(n), metric=metric, seed=seed)
    cache = ResultCache(cache_dir) if cache_dir else None
    evaluator = Evaluator(bench_dir, cache, jobs=jobs)
    space = SearchSpace.for_request(request.algo_class, request.n)

    db = PlanDB(db_path) if db_path else None
    if db is not None:
        hit = db.get(request, evaluator.code_version, space.hash())
        if hit is not None:
            return hit

    plan = tune_one(request, evaluator)
    if db is not None and persist:
        db.put(plan)
        db.save()
    return plan
