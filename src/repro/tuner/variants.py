"""Tunable algorithm variants and their execution adapters.

Every variant is registered as a :class:`Variant`: which layouts its input
may arrive in (native first), which block factors it accepts at a given
``n``, and a runner that executes one :class:`~repro.tuner.space.TuneConfig`
on a fresh machine and verifies the output host-side.

**Layout adapter semantics.**  Placement is free in the spatial computer
model, so "the input arrives in layout L" is modeled by placing the input
at L's coordinates and then paying one charged ``machine.send`` (under a
``relayout`` phase) to the variant's native layout.  The post-relayout run
is then bit-identical to the native configuration — which is exactly what
makes non-native layouts analytically dominated (see
:mod:`repro.tuner.bounds`).

To register a new tunable variant, append a :class:`Variant` entry for its
algo class here (or call :func:`register_variant` from your own module) —
the search space, pruner, CLI table, plan DB, and ``/plan`` endpoint all
pick it up from this registry.  See ``docs/TUNER.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..machine import Region, SpatialMachine
from ..machine.layout import rowmajor_layout, square_plus_l_layout, zorder_layout
from ..runner.registry import point_from_machine

__all__ = [
    "SORT_LAYOUTS",
    "SPMV_ITERS",
    "Variant",
    "VARIANTS",
    "register_variant",
    "variants_for",
    "get_variant",
    "layout_coords",
    "sort_workload",
    "run_config",
    "run_config_point",
]

#: layouts a sorter's input may arrive in (native row-major first)
SORT_LAYOUTS = ("rowmajor", "zorder", "square_l")

#: multiplies per SpMV request — planned SpMV amortizes its plan over these
SPMV_ITERS = 4


def layout_coords(layout: str, region: Region, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Coordinates of the first ``n`` cells of ``region`` in ``layout``."""
    if layout == "rowmajor":
        return rowmajor_layout(region, n)
    if layout == "zorder":
        return zorder_layout(region, n)
    if layout == "square_l":
        # Fig. 3 shape: a corner square holding n/4 elements (side/2 on a
        # power-of-two region) plus the mirrored-L fill for the rest.
        if n < 4:
            return rowmajor_layout(region, n)
        n_square = n // 4
        (sr, sc), (lr, lc) = square_plus_l_layout(region, n_square, n - n_square)
        return np.concatenate([sr, lr]), np.concatenate([sc, lc])
    raise ValueError(f"unknown layout {layout!r}; known: rowmajor, zorder, square_l")


def relayout(machine: SpatialMachine, ta, region: Region, src: str, dst: str):
    """One charged send moving ``ta`` from layout ``src`` to ``dst``."""
    if src == dst:
        return ta
    rows, cols = layout_coords(dst, region, len(ta))
    with machine.phase("relayout"):
        return machine.send(ta, rows, cols)


@dataclass(frozen=True)
class Variant:
    """One tunable algorithm variant."""

    algo_class: str
    name: str
    #: the layout the implementation consumes (relayout target)
    native_layout: str
    #: layouts the input may arrive in, native first
    layouts: tuple[str, ...]
    #: ``run(machine, config, n, rng) -> verified output ndarray``
    run: Callable[[SpatialMachine, "object", int, np.random.Generator], np.ndarray]
    #: ``n -> valid block factors`` (``(None,)`` for unblocked variants)
    blocks: Callable[[int], tuple] = field(default=lambda n: (None,))
    note: str = ""

    def tunable_layouts(self, n: int) -> tuple[str, ...]:
        return self.layouts


#: algo class -> variant name -> Variant (enumeration order = registration)
VARIANTS: dict[str, dict[str, Variant]] = {}


def register_variant(variant: Variant) -> Variant:
    VARIANTS.setdefault(variant.algo_class, {})[variant.name] = variant
    return variant


def variants_for(algo_class: str) -> tuple[Variant, ...]:
    return tuple(VARIANTS.get(algo_class, {}).values())


def get_variant(algo_class: str, name: str) -> Variant:
    try:
        return VARIANTS[algo_class][name]
    except KeyError:
        known = ", ".join(VARIANTS.get(algo_class, {}))
        raise ValueError(
            f"unknown variant {name!r} for class {algo_class!r}; known: {known}"
        ) from None


# ---------------------------------------------------------------------------
# sorters: all seven variants share the placement/relayout/verify driver
# ---------------------------------------------------------------------------
def sort_workload(n: int, rng: np.random.Generator) -> np.ndarray:
    """The workload the sort tuner measures (uniform keys, seed-determined)."""
    return rng.random(n)


def _sort_region(n: int) -> Region:
    side = math.isqrt(n)
    if side * side != n or side & (side - 1):
        raise ValueError(f"sort configs need n a power of 4, got {n}")
    return Region(0, 0, side, side)


def _run_sorter(sorter) -> Callable:
    """Wrap a ``(machine, ta, region, x, rng) -> 1-D values`` sorter body."""

    def run(machine: SpatialMachine, config, n: int, rng: np.random.Generator):
        from ..core.sorting.sortutil import as_sort_payload

        region = _sort_region(n)
        x = sort_workload(n, rng)
        rows, cols = layout_coords(config.layout, region, n)
        ta = machine.place(as_sort_payload(x), rows, cols)
        ta = relayout(machine, ta, region, config.layout, "rowmajor")
        out = np.asarray(sorter(machine, ta, region, x, rng))
        expect = np.sort(x)
        if not np.array_equal(out, expect):
            raise RuntimeError(f"{config.label()} returned an unsorted result")
        return out

    return run


def _sort_mergesort(machine, ta, region, x, rng):
    from ..core.sorting.mergesort2d import mergesort_2d

    return mergesort_2d(machine, ta, region).payload[:, 0]


def _sort_quicksort(machine, ta, region, x, rng):
    # quicksort_2d consumes raw values (placement is free); the relayout
    # send on ``ta`` is already charged, which is the cost being tuned
    from ..core.sorting.quicksort2d import quicksort_2d

    return np.asarray(quicksort_2d(machine, x, region, rng).payload)


def _sort_bitonic(machine, ta, region, x, rng):
    from ..core.sorting.bitonic import bitonic_sort

    return bitonic_sort(machine, ta, region).payload[:, 0]


def _sort_oddeven(machine, ta, region, x, rng):
    from ..core.sorting.odd_even import odd_even_mergesort

    return odd_even_mergesort(machine, ta, region).payload[:, 0]


def _sort_shearsort(machine, ta, region, x, rng):
    from ..core.sorting.mesh_sort import shearsort

    return shearsort(machine, ta, region).payload[:, 0]


def _sort_allpairs(machine, ta, region, x, rng):
    from ..core.sorting.allpairs import allpairs_sort

    return allpairs_sort(machine, ta, region).payload[:, 0]


def _sort_merge2d(machine, ta, region, x, rng):
    # one-level 2D merge: quadrant-sized base cases sorted by all-pairs
    # rank, then a single round of the Fig. 3 merge recursion
    from ..core.sorting.mergesort2d import mergesort_2d

    n = len(x)
    return mergesort_2d(machine, ta, region, base_case=max(4, n // 4)).payload[:, 0]


for _name, _body, _note in (
    ("mergesort", _sort_mergesort, "2D mergesort (energy-optimal, §V)"),
    ("quicksort", _sort_quicksort, "selection quicksort (w.h.p. bounds)"),
    ("bitonic", _sort_bitonic, "Batcher bitonic network"),
    ("oddeven", _sort_oddeven, "Batcher odd-even merge network"),
    ("shearsort", _sort_shearsort, "mesh shearsort baseline"),
    ("allpairs", _sort_allpairs, "all-pairs rank sort"),
    ("merge2d", _sort_merge2d, "one-level 2D merge over all-pairs leaves"),
):
    register_variant(
        Variant(
            algo_class="sort",
            name=_name,
            native_layout="rowmajor",
            layouts=SORT_LAYOUTS,
            run=_run_sorter(_body),
            note=_note,
        )
    )


# ---------------------------------------------------------------------------
# scan: the Z-order tree scan (layout-tunable) vs host-blocked scans
# ---------------------------------------------------------------------------
def _run_scan_tree(machine, config, n, rng):
    from ..core.scan import scan

    region = _sort_region(n)
    x = rng.random(n)
    rows, cols = layout_coords(config.layout, region, n)
    ta = machine.place(x, rows, cols)
    ta = relayout(machine, ta, region, config.layout, "zorder")
    res = scan(machine, ta, region)
    out = np.asarray(res.inclusive.payload)
    if not np.allclose(out, np.cumsum(x)):
        raise RuntimeError(f"{config.label()} scan prefix mismatch")
    return out


def _run_scan_blocked(machine, config, n, rng):
    from ..core.blocked import blocked_scan

    x = rng.random(n)
    out = np.asarray(blocked_scan(machine, x, block=int(config.block)).prefix)
    if not np.allclose(out, np.cumsum(x)):
        raise RuntimeError(f"{config.label()} blocked-scan prefix mismatch")
    return out


def _scan_blocks(n: int) -> tuple:
    """Block factors with a power-of-4 number of blocks (blocked_scan's rule)."""
    valid = []
    for b in (4, 16, 64):
        if b > n or n % b:
            continue
        nblocks = n // b
        if nblocks > 0 and nblocks & (nblocks - 1) == 0 and nblocks.bit_length() % 2 == 1:
            valid.append(b)
    return tuple(valid) or ()


register_variant(
    Variant(
        algo_class="scan",
        name="tree",
        native_layout="zorder",
        layouts=("zorder", "rowmajor", "square_l"),
        run=_run_scan_tree,
        note="4-ary Z-order summation tree (§IV.C)",
    )
)
register_variant(
    Variant(
        algo_class="scan",
        name="blocked",
        native_layout="host",
        layouts=("host",),
        run=_run_scan_blocked,
        blocks=_scan_blocks,
        note="b words per PE: free local prefix + spatial scan of block totals",
    )
)


# ---------------------------------------------------------------------------
# spmv: one-shot direct multiplies vs plan-once-apply-many
# ---------------------------------------------------------------------------
def _spmv_operands(n: int, rng: np.random.Generator):
    from ..spmv import random_coo

    A = random_coo(n, 4 * n, rng)
    xs = rng.standard_normal((SPMV_ITERS, n))
    return A, xs


def _spmv_verify(config, A, x, y):
    expect = np.zeros(A.n)
    np.add.at(expect, A.rows, A.vals * x[A.cols])
    if not np.allclose(np.asarray(y), expect):
        raise RuntimeError(f"{config.label()} SpMV result mismatch")


def _run_spmv_direct(machine, config, n, rng):
    from ..spmv import spmv_spatial

    A, xs = _spmv_operands(n, rng)
    y = None
    for x in xs:
        y = spmv_spatial(machine, A, x)
    _spmv_verify(config, A, xs[-1], y.payload)
    return np.asarray(y.payload)


def _run_spmv_planned(machine, config, n, rng):
    from ..spmv import plan_spmv

    A, xs = _spmv_operands(n, rng)
    plan = plan_spmv(machine, A)
    y = None
    for x in xs:
        y = plan.apply(x)
    _spmv_verify(config, A, xs[-1], y.payload)
    return np.asarray(y.payload)


register_variant(
    Variant(
        algo_class="spmv",
        name="direct",
        native_layout="coo",
        layouts=("coo",),
        run=_run_spmv_direct,
        note=f"{SPMV_ITERS} independent full multiplies",
    )
)
register_variant(
    Variant(
        algo_class="spmv",
        name="planned",
        native_layout="coo",
        layouts=("coo",),
        run=_run_spmv_planned,
        note=f"plan once, {SPMV_ITERS} applies along precomputed lanes",
    )
)


# ---------------------------------------------------------------------------
# execution entry points
# ---------------------------------------------------------------------------
def run_config(config, n: int, seed: int = 0) -> SpatialMachine:
    """Execute one configuration on a fresh machine; return the machine."""
    variant = get_variant(config.algo_class, config.variant)
    machine = SpatialMachine()
    rng = np.random.default_rng(seed)
    variant.run(machine, config, n, rng)
    return machine


def run_config_point(params: dict, rng) -> dict:
    """The ``tuner`` suite point function (see ``benchmarks/bench_tuner.py``).

    ``rng`` is the registry-provided seeded generator; the run consumes it
    directly so the point stays deterministic in ``(params, seed)``.
    """
    from .space import TuneConfig

    params = dict(params)
    n = int(params.pop("n"))
    config = TuneConfig.from_params(params)
    variant = get_variant(config.algo_class, config.variant)
    machine = SpatialMachine()
    variant.run(machine, config, n, rng)
    return point_from_machine(
        machine,
        config=config.as_dict(),
        config_label=config.label(),
        n=n,
        edp=int(machine.stats.energy) * int(machine.stats.max_depth),
    )
