"""Admissible per-configuration lower bounds for the analytic pruner.

Every bound here is *admissible relative to its configuration*: for each
metric in {energy, max_depth, edp}, ``config_bounds(config, n, seed)``
never exceeds what actually executing that configuration measures.  That is
the whole pruning contract — a configuration whose bound already beats the
incumbent's *measured* value can be discarded without simulation, and the
pruned search provably returns the same argmin as brute force (see
``docs/TUNER.md`` and the hypothesis suite in
``tests/test_tuner_properties.py``).

The bound families:

* **relayout displacement** — the adapter send from the arrival layout to
  the variant's native layout is a concrete charged message batch; its
  Manhattan displacement sum is exact, not a bound.
* **displacement-to-sorted** (every sorter) — a correct sort must move the
  element at row-major cell ``i`` to cell ``rank(i)``; no routing beats the
  Manhattan displacement sum (:func:`displacement_lower_bound`, Lemma V.1's
  per-instance sharpening).
* **oblivious network wiring** (bitonic, odd-even) — the comparator
  networks send every wire on every stage regardless of data, so their
  stage-distance sums are closed-form and *exact*; depth is the stage
  count.
* **combining floors** (scan, all-pairs) — combining ``k`` values takes at
  least ``k - 1`` unit-energy messages; a broadcast reaching ``k`` distinct
  cells costs at least ``k - 1``; a constant fan-in combine tree over ``n``
  values is at least ``ceil(log4 n)`` deep.
"""

from __future__ import annotations

import math

import numpy as np

from ..machine.geometry import Region, manhattan_arrays
from .space import TuneConfig
from .variants import SPMV_ITERS, get_variant, layout_coords, sort_workload

__all__ = [
    "TUNE_METRICS",
    "metric_value",
    "relayout_energy",
    "displacement_to_sorted",
    "bitonic_network_energy",
    "bitonic_stage_count",
    "oddeven_network_energy",
    "oddeven_stage_count",
    "allpairs_scatter_energy",
    "is_dominated",
    "config_bounds",
]

#: metrics the tuner optimizes; ``edp`` is the energy-depth product
TUNE_METRICS = ("energy", "max_depth", "edp")


def metric_value(metrics: dict, metric: str) -> int:
    """Extract one objective from a measured ``metrics`` dict."""
    if metric == "edp":
        return int(metrics["energy"]) * int(metrics["max_depth"])
    if metric not in TUNE_METRICS:
        raise ValueError(f"unknown tuning metric {metric!r}; known: {', '.join(TUNE_METRICS)}")
    return int(metrics[metric])


def _sort_region(n: int) -> Region:
    return Region(0, 0, math.isqrt(n), math.isqrt(n))


def _coord_displacement(a: tuple, b: tuple) -> int:
    return int(manhattan_arrays(a[0], a[1], b[0], b[1]).sum())


def relayout_energy(layout: str, native: str, region: Region, n: int) -> int:
    """Exact energy of the adapter send from ``layout`` to ``native``."""
    if layout == native:
        return 0
    return _coord_displacement(
        layout_coords(layout, region, n), layout_coords(native, region, n)
    )


def displacement_to_sorted(x: np.ndarray, region: Region) -> int:
    """Manhattan floor for moving row-major cell ``i`` to cell ``rank(i)``."""
    n = len(x)
    perm = np.empty(n, dtype=np.int64)
    perm[np.argsort(x, kind="stable")] = np.arange(n, dtype=np.int64)
    rows, cols = region.rowmajor_coords(n)
    return int(manhattan_arrays(rows, cols, rows[perm], cols[perm]).sum())


def _log2(n: int) -> int:
    return int(n).bit_length() - 1


def _log4_ceil(n: int) -> int:
    return (max(_log2(n), 0) + 1) // 2


def bitonic_network_energy(n: int, region: Region) -> int:
    """Exact wire energy of the bitonic network: every stage sends all wires."""
    rows, cols = region.rowmajor_coords(n)
    idx = np.arange(n, dtype=np.int64)
    total = 0
    k = 2
    while k <= n:
        j = k >> 1
        while j >= 1:
            partner = idx ^ j
            total += int(manhattan_arrays(rows, cols, rows[partner], cols[partner]).sum())
            j >>= 1
        k <<= 1
    return total


def bitonic_stage_count(n: int) -> int:
    log = _log2(n)
    return log * (log + 1) // 2


def oddeven_network_energy(n: int, region: Region) -> int:
    """Exact wire energy of the odd-even merge network (paired exchanges)."""
    from ..core.sorting.odd_even import odd_even_stages

    rows, cols = region.rowmajor_coords(n)
    total = 0
    for stage in odd_even_stages(n):
        lo = np.asarray([p[0] for p in stage], dtype=np.int64)
        hi = np.asarray([p[1] for p in stage], dtype=np.int64)
        total += 2 * int(manhattan_arrays(rows[lo], cols[lo], rows[hi], cols[hi]).sum())
    return total


def oddeven_stage_count(n: int) -> int:
    from ..core.sorting.odd_even import odd_even_stages

    return len(odd_even_stages(n))


def allpairs_scatter_energy(n: int, region: Region) -> int:
    """Exact energy of the all-pairs scatter to subgrid corners."""
    s = math.isqrt(n)
    rows, cols = region.rowmajor_coords(n)
    i = np.arange(n, dtype=np.int64)
    dest_rows = (i // s) * s + region.row
    dest_cols = (i % s) * s + region.col
    return int(manhattan_arrays(rows, cols, dest_rows, dest_cols).sum())


def is_dominated(config: TuneConfig) -> bool:
    """True when the configuration is analytically dominated.

    With adapter semantics, a non-native arrival layout measures exactly the
    native run plus the charged relayout on energy, and at least the native
    run on depth (per-element metadata is monotone under the extra send) —
    so it can never beat the native configuration, which the search space
    enumerates first.
    """
    variant = get_variant(config.algo_class, config.variant)
    return config.layout != variant.native_layout


def config_bounds(config: TuneConfig, n: int, seed: int = 0) -> dict:
    """Admissible ``{energy, max_depth, edp}`` floors for one configuration."""
    if config.algo_class == "sort":
        region = _sort_region(n)
        relayout = relayout_energy(config.layout, "rowmajor", region, n)
        x = sort_workload(n, np.random.default_rng(seed))
        disp = displacement_to_sorted(x, region)
        if config.variant == "bitonic":
            energy = relayout + max(disp, bitonic_network_energy(n, region))
            depth = bitonic_stage_count(n)
        elif config.variant == "oddeven":
            energy = relayout + max(disp, oddeven_network_energy(n, region))
            depth = oddeven_stage_count(n)
        elif config.variant == "shearsort":
            energy = relayout + disp
            depth = region.width
        elif config.variant == "allpairs":
            # two replication broadcasts deliver every element to >= n-1
            # distinct cells each, after the exact corner scatter
            energy = relayout + max(disp, allpairs_scatter_energy(n, region) + 2 * n * (n - 1))
            depth = _log4_ceil(n) + 1
        else:  # mergesort / quicksort / merge2d: data-dependent routing
            energy = relayout + disp
            depth = _log4_ceil(n) + 1
    elif config.algo_class == "scan":
        if config.variant == "blocked":
            nblocks = n // int(config.block)
            energy = max(0, nblocks - 1)
            depth = _log4_ceil(nblocks) if nblocks > 1 else 0
        else:
            region = _sort_region(n)
            energy = relayout_energy(config.layout, "zorder", region, n) + (n - 1)
            depth = _log4_ceil(n) + 1
    elif config.algo_class == "spmv":
        # every one of the 4n entries must be touched at least once; depth
        # floors at a single combine hop
        energy = 4 * n
        depth = 1
        if config.variant == "direct":
            energy = SPMV_ITERS * 4 * n
    else:
        raise ValueError(f"no bounds for algo class {config.algo_class!r}")
    return {"energy": int(energy), "max_depth": int(depth), "edp": int(energy) * int(depth)}
