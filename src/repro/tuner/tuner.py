"""The pruned search: bounds first, simulation only for contenders.

:func:`tune_one` runs one ``(algo_class, n, metric, seed)`` request:

1. enumerate the :class:`~repro.tuner.space.SearchSpace` (native layouts
   first);
2. **dominance pruning** — drop every non-native-layout configuration: it
   measures exactly its native sibling plus the charged relayout, so it can
   never win (see :func:`repro.tuner.bounds.is_dominated`);
3. **bound-vs-incumbent pruning** — order survivors by ascending lower
   bound on the objective and evaluate in that order (chunked for parallel
   evaluators); a configuration whose bound exceeds the best *measured*
   value so far is discarded unevaluated.  Pruning uses strict ``>`` so a
   bound that merely ties the incumbent still gets measured — that is what
   makes the argmin *bit-identical* to brute force: any pruned config has
   ``measured >= bound > incumbent >= final best``;
4. the plan is the argmin over measured values with ties broken by
   enumeration order (native layouts enumerate first, so a dominated
   configuration can never steal a tie).

``brute=True`` skips both pruning stages — the equivalence oracle the
acceptance tests and the hypothesis suite check against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runner.result import PointResult
from .bounds import TUNE_METRICS, config_bounds, is_dominated, metric_value
from .evaluate import Evaluator
from .space import SearchSpace, TuneConfig

__all__ = ["TuneError", "TuneRequest", "TunePlan", "tune_one"]

PLAN_SCHEMA_VERSION = 1


class TuneError(RuntimeError):
    """No configuration could be measured for a request."""


@dataclass(frozen=True)
class TuneRequest:
    """One tuning question: best variant for ``algo_class`` at ``n``."""

    algo_class: str
    n: int
    metric: str = "edp"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.metric not in TUNE_METRICS:
            raise ValueError(
                f"unknown tuning metric {self.metric!r}; known: {', '.join(TUNE_METRICS)}"
            )

    def key(self) -> str:
        return f"{self.algo_class}/n={self.n}/metric={self.metric}/seed={self.seed}"


@dataclass
class TunePlan:
    """The answer: best configuration plus the full search record."""

    algo_class: str
    n: int
    metric: str
    seed: int
    best: dict  # {"config", "metrics", "value"}
    pareto: list = field(default_factory=list)
    table: list = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    space_hash: str = ""
    code_version: str = ""

    @property
    def best_config(self) -> TuneConfig:
        return TuneConfig.from_dict(self.best["config"])

    def pruned_fraction(self) -> float:
        total = self.counts.get("total", 0)
        pruned = self.counts.get("dominated", 0) + self.counts.get("bound_pruned", 0)
        return pruned / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "algo_class": self.algo_class,
            "n": self.n,
            "metric": self.metric,
            "seed": self.seed,
            "best": dict(self.best),
            "pareto": list(self.pareto),
            "table": list(self.table),
            "counts": dict(self.counts),
            "space_hash": self.space_hash,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TunePlan":
        return cls(
            algo_class=str(d["algo_class"]),
            n=int(d["n"]),
            metric=str(d["metric"]),
            seed=int(d.get("seed", 0)),
            best=dict(d["best"]),
            pareto=list(d.get("pareto", [])),
            table=list(d.get("table", [])),
            counts=dict(d.get("counts", {})),
            space_hash=str(d.get("space_hash", "")),
            code_version=str(d.get("code_version", "")),
        )


@dataclass
class _Row:
    index: int
    config: TuneConfig
    lb: dict
    status: str = "pending"  # evaluated | pruned_dominated | pruned_bound | failed
    metrics: dict | None = None
    value: int | None = None
    error: str | None = None

    def as_table_row(self) -> dict:
        return {
            "config": self.config.as_dict(),
            "label": self.config.label(),
            "status": self.status,
            "bounds": dict(self.lb),
            "metrics": dict(self.metrics) if self.metrics else None,
            "value": self.value,
            "error": self.error,
        }


def _absorb(row: _Row, result: PointResult, metric: str) -> None:
    if result.ok and result.metrics:
        row.status = "evaluated"
        row.metrics = dict(result.metrics)
        row.metrics["edp"] = metric_value(result.metrics, "edp")
        row.value = metric_value(result.metrics, metric)
    else:
        row.status = "failed"
        row.error = result.error or "evaluation failed"


def _pareto_front(rows: list[_Row]) -> list[dict]:
    """Measured configs no other measured config beats on both objectives."""
    measured = [r for r in rows if r.status == "evaluated"]
    front = []
    for r in measured:
        e, d = r.metrics["energy"], r.metrics["max_depth"]
        dominated = any(
            (o.metrics["energy"] <= e and o.metrics["max_depth"] < d)
            or (o.metrics["energy"] < e and o.metrics["max_depth"] <= d)
            for o in measured
        )
        if not dominated:
            front.append(r)
    front.sort(key=lambda r: (r.metrics["energy"], r.metrics["max_depth"], r.index))
    return [{"config": r.config.as_dict(), "metrics": dict(r.metrics)} for r in front]


def tune_one(
    request: TuneRequest,
    evaluator: Evaluator,
    *,
    brute: bool = False,
) -> TunePlan:
    """Answer one request; ``brute=True`` measures every configuration."""
    space = SearchSpace.for_request(request.algo_class, request.n)
    rows = [
        _Row(index=i, config=c, lb=config_bounds(c, request.n, request.seed))
        for i, c in enumerate(space.configs)
    ]

    dominated = 0
    candidates: list[_Row] = []
    for row in rows:
        if not brute and is_dominated(row.config):
            row.status = "pruned_dominated"
            dominated += 1
        else:
            candidates.append(row)

    bound_pruned = 0
    if brute:
        results = evaluator.evaluate(
            [r.config for r in candidates], request.n, request.seed
        )
        for row, result in zip(candidates, results):
            _absorb(row, result, request.metric)
    else:
        # ascending bound order; stable, so enumeration order breaks LB ties
        candidates.sort(key=lambda r: (r.lb[request.metric], r.index))
        incumbent: int | None = None
        chunk = max(1, evaluator.jobs)
        cursor = 0
        while cursor < len(candidates):
            batch = []
            while cursor < len(candidates) and len(batch) < chunk:
                row = candidates[cursor]
                cursor += 1
                if incumbent is not None and row.lb[request.metric] > incumbent:
                    row.status = "pruned_bound"
                    bound_pruned += 1
                else:
                    batch.append(row)
            if not batch:
                continue
            results = evaluator.evaluate(
                [r.config for r in batch], request.n, request.seed
            )
            for row, result in zip(batch, results):
                _absorb(row, result, request.metric)
                if row.value is not None and (incumbent is None or row.value < incumbent):
                    incumbent = row.value

    measured = [r for r in rows if r.status == "evaluated"]
    if not measured:
        errors = "; ".join(
            f"{r.config.label()}: {r.error}" for r in rows if r.status == "failed"
        )
        raise TuneError(
            f"no configuration of {request.key()} could be measured"
            + (f" ({errors})" if errors else "")
        )
    best = min(measured, key=lambda r: (r.value, r.index))

    failed = sum(1 for r in rows if r.status == "failed")
    return TunePlan(
        algo_class=request.algo_class,
        n=request.n,
        metric=request.metric,
        seed=request.seed,
        best={
            "config": best.config.as_dict(),
            "label": best.config.label(),
            "metrics": dict(best.metrics),
            "value": best.value,
        },
        pareto=_pareto_front(rows),
        table=[r.as_table_row() for r in rows],
        counts={
            "total": len(rows),
            "dominated": dominated,
            "bound_pruned": bound_pruned,
            "evaluated": len(measured),
            "failed": failed,
        },
        space_hash=space.hash(),
        code_version=evaluator.code_version,
    )
