"""Configuration evaluation through the runner's executor and cache.

The tuner never measures a configuration itself — every evaluation is a
sweep point of the registered ``tuner`` suite (``benchmarks/bench_tuner.py``),
keyed through :mod:`repro.runner.cachekey` exactly like ``repro bench run``
and the serving layer.  Consequences:

* parallel evaluation reuses :func:`repro.runner.executor.run_points`
  (process isolation, timeouts, retries) with zero new machinery;
* the content-addressed cache is shared — a config measured by the CLI
  warms ``plan_for`` and the ``/plan`` endpoint, and vice versa;
* PlanDB staleness falls out of ``suite_code_version``: any source change
  re-keys every evaluation.

The inline path exists for hosts that must not fork (the service's planner
runs on event-loop threads) and for tiny grids where process spin-up would
dominate; it produces byte-identical cache entries.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..runner.cache import ResultCache
from ..runner.cachekey import point_key, suite_code_version
from ..runner.executor import RunConfig, run_points
from ..runner.registry import Suite, load_suites
from ..runner.result import PointResult
from ..runner.spec import PointSpec
from .space import TuneConfig

__all__ = ["TUNER_SUITE", "Evaluator"]

#: the registered suite every tuner evaluation runs through
TUNER_SUITE = "tuner"


class Evaluator:
    """Measure configurations as ``tuner``-suite points, cache-first."""

    def __init__(
        self,
        bench_dir: str | Path | None = None,
        cache: ResultCache | None = None,
        *,
        jobs: int = 0,
        timeout: float = 300.0,
        log=None,
    ) -> None:
        self.bench_dir = str(bench_dir or "")
        suites = load_suites(bench_dir)
        try:
            self.suite: Suite = suites[TUNER_SUITE]
        except KeyError:
            raise RuntimeError(
                f"the benchmark registry has no {TUNER_SUITE!r} suite; "
                "is benchmarks/bench_tuner.py present?"
            ) from None
        self.cache = cache
        self.jobs = int(jobs)  # 0 => inline (in-process, no forking)
        self.timeout = float(timeout)
        self.log = log
        self.code_version = suite_code_version(self.suite)
        self.executed = 0
        self.cache_hits = 0

    def point_for(self, config: TuneConfig, n: int, seed: int) -> PointSpec:
        return PointSpec(suite=TUNER_SUITE, params=config.params(n), seed=seed)

    def evaluate(
        self, configs: list[TuneConfig], n: int, seed: int
    ) -> list[PointResult]:
        """Measure ``configs`` at ``(n, seed)``; one PointResult per config."""
        if not configs:
            return []
        points = [self.point_for(c, n, seed) for c in configs]
        if self.jobs > 0:
            return self._evaluate_parallel(points)
        return [self._evaluate_inline(pt) for pt in points]

    # -- parallel: the runner's process-per-point executor ---------------
    def _evaluate_parallel(self, points: list[PointSpec]) -> list[PointResult]:
        config = RunConfig(
            jobs=self.jobs,
            timeout=self.timeout,
            use_cache=self.cache is not None,
        )
        before = self.cache.hits if self.cache is not None else 0
        results = run_points(
            self.suite,
            points,
            config,
            cache=self.cache,
            code_ver=self.code_version,
            bench_dir=self.bench_dir,
            log=self.log,
        )
        if self.cache is not None:
            self.cache_hits += self.cache.hits - before
        self.executed += sum(1 for r in results if not r.cached)
        return results

    # -- inline: same identity, no processes -----------------------------
    def _evaluate_inline(self, pt: PointSpec) -> PointResult:
        key = point_key(pt, self.code_version)
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                return hit
        started = time.monotonic()
        base = dict(params=dict(pt.params), seed=pt.seed, repeat=pt.repeat)
        try:
            payload = self.suite.fn(dict(pt.params), np.random.default_rng(pt.seed))
        except Exception as exc:
            return PointResult(
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                wall_time_s=time.monotonic() - started,
                **base,
            )
        self.executed += 1
        result = PointResult(
            status="ok",
            wall_time_s=time.monotonic() - started,
            metrics=payload["metrics"],
            phases=payload.get("phases", []),
            extra=payload.get("extra", {}),
            **base,
        )
        if self.cache is not None:
            self.cache.put(key, result)
        return result
