"""The tuner's configuration space.

A :class:`TuneConfig` names one concrete way to run a primitive: an
algorithm variant, the layout the input arrives in, and (where the variant
takes one) a block factor.  A :class:`SearchSpace` enumerates every valid
configuration for an ``(algo_class, n)`` request from the variant registry
in :mod:`repro.tuner.variants` — the same registry that documents how to
make a new variant tunable.

Enumeration order is load-bearing: for each variant the *native* layout
comes first, then the other layouts in the variant's declared order.  The
tuner's dominance pruning (a non-native layout costs exactly the native run
plus a charged relayout — see :mod:`repro.tuner.bounds`) and its
first-wins tie-break both rely on the native configuration preceding its
dominated siblings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runner.spec import spec_hash

__all__ = ["ALGO_CLASSES", "TuneConfig", "SearchSpace"]

#: request classes the tuner serves (sorters x layouts, scan tree/blocked
#: x block factors, direct vs planned SpMV)
ALGO_CLASSES = ("sort", "scan", "spmv")


@dataclass(frozen=True)
class TuneConfig:
    """One point of the search space: (variant, layout, block factor)."""

    algo_class: str
    variant: str
    layout: str
    block: int | None = None

    def params(self, n: int) -> dict:
        """The ``tuner`` suite params executing this configuration at ``n``."""
        return {
            "algo_class": self.algo_class,
            "variant": self.variant,
            "layout": self.layout,
            "block": self.block,
            "n": int(n),
        }

    def label(self) -> str:
        tail = f"/b{self.block}" if self.block is not None else ""
        return f"{self.algo_class}/{self.variant}@{self.layout}{tail}"

    def as_dict(self) -> dict:
        return {
            "algo_class": self.algo_class,
            "variant": self.variant,
            "layout": self.layout,
            "block": self.block,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneConfig":
        block = d.get("block")
        return cls(
            algo_class=str(d["algo_class"]),
            variant=str(d["variant"]),
            layout=str(d["layout"]),
            block=None if block is None else int(block),
        )

    @classmethod
    def from_params(cls, params: dict) -> "TuneConfig":
        return cls.from_dict(params)


@dataclass(frozen=True)
class SearchSpace:
    """Every valid configuration for one ``(algo_class, n)`` request."""

    algo_class: str
    n: int
    configs: tuple[TuneConfig, ...]

    @classmethod
    def for_request(cls, algo_class: str, n: int) -> "SearchSpace":
        from .variants import variants_for

        if algo_class not in ALGO_CLASSES:
            raise ValueError(
                f"unknown algo class {algo_class!r}; tunable: {', '.join(ALGO_CLASSES)}"
            )
        configs: list[TuneConfig] = []
        for variant in variants_for(algo_class):
            for layout in variant.tunable_layouts(n):
                for block in variant.blocks(n):
                    configs.append(
                        TuneConfig(
                            algo_class=algo_class,
                            variant=variant.name,
                            layout=layout,
                            block=block,
                        )
                    )
        if not configs:
            raise ValueError(f"no valid configurations for {algo_class} at n={n}")
        return cls(algo_class=algo_class, n=int(n), configs=tuple(configs))

    def hash(self) -> str:
        """Content hash of the enumerated space (PlanDB staleness key)."""
        return spec_hash(
            {
                "algo_class": self.algo_class,
                "n": self.n,
                "configs": [c.as_dict() for c in self.configs],
            }
        )

    def __len__(self) -> int:
        return len(self.configs)
