"""Synchronous plan resolution for hosts that serve requests (the service).

:class:`ServicePlanner` answers "which configuration runs this request?"
with three tiers, cheapest first:

1. an in-process memo (per planner instance, keyed like the DB);
2. the persistent :class:`~repro.tuner.plandb.PlanDB`, honoured only when
   its ``code_version`` and ``space_hash`` match the current tree;
3. a live :func:`~repro.tuner.tuner.tune_one` run through an *inline*
   evaluator — no forking, safe on event-loop worker threads — sharing the
   service's content-addressed result cache, so candidate measurements warm
   the same store ``POST /run`` executions hit.

Freshly tuned plans are written back to the DB (best effort: an unwritable
DB path degrades to memo-only).  All resolution is serialized under one
lock — concurrent identical requests tune once.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..runner.cache import ResultCache
from .evaluate import Evaluator
from .plandb import PlanDB
from .space import SearchSpace
from .tuner import TunePlan, TuneRequest, tune_one

__all__ = ["ServicePlanner"]


class ServicePlanner:
    """Memo -> PlanDB -> tune, under a lock; built lazily on first use."""

    def __init__(
        self,
        *,
        bench_dir: str | Path | None = None,
        cache: ResultCache | None = None,
        db_path: str | Path | None = None,
    ) -> None:
        self.bench_dir = bench_dir
        self.cache = cache
        self.db_path = db_path
        self._lock = threading.Lock()
        self._memo: dict[str, TunePlan] = {}
        self._evaluator: Evaluator | None = None
        self._db: PlanDB | None = None
        self.tuned = 0
        self.db_hits = 0
        self.memo_hits = 0

    def _materialize(self) -> Evaluator:
        if self._evaluator is None:
            self._evaluator = Evaluator(self.bench_dir, self.cache, jobs=0)
            if self.db_path:
                self._db = PlanDB(self.db_path)
        return self._evaluator

    @property
    def code_version(self) -> str:
        with self._lock:
            return self._materialize().code_version

    def plan(
        self, algo_class: str, n: int, metric: str = "edp", seed: int = 0
    ) -> tuple[TunePlan, str]:
        """The best plan plus its provenance: ``memo`` | ``db`` | ``tuned``."""
        request = TuneRequest(algo_class=algo_class, n=int(n), metric=metric, seed=seed)
        key = request.key()
        with self._lock:
            evaluator = self._materialize()
            hit = self._memo.get(key)
            if hit is not None:
                self.memo_hits += 1
                return hit, "memo"
            space_hash = SearchSpace.for_request(request.algo_class, request.n).hash()
            if self._db is not None:
                stored = self._db.get(request, evaluator.code_version, space_hash)
                if stored is not None:
                    self.db_hits += 1
                    self._memo[key] = stored
                    return stored, "db"
            plan = tune_one(request, evaluator)
            self.tuned += 1
            self._memo[key] = plan
            if self._db is not None:
                self._db.put(plan)
                try:
                    self._db.save()
                except OSError:
                    pass  # read-only deployment: memo still holds the plan
            return plan, "tuned"

    def stats(self) -> dict:
        return {
            "memo_entries": len(self._memo),
            "memo_hits": self.memo_hits,
            "db_hits": self.db_hits,
            "tuned": self.tuned,
        }
