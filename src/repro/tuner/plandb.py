"""Persistent plan database: a warm cache of tuning answers.

The DB is a single JSON file mapping request keys
(``sort/n=64/metric=edp/seed=0``) to full :class:`~repro.tuner.tuner.TunePlan`
dicts.  It is **never authoritative**: every lookup re-checks the stored
``code_version`` (hash of the repro sources plus the tuner bench file) and
``space_hash`` (hash of the enumerated configuration space) against the
caller's current values, and a mismatch reads as a miss.  A stale plan is
therefore re-tuned, never silently served — the staleness test in
``tests/test_tuner.py`` pins this down.

The checked-in copy under ``benchmarks/plans/plan_db.json`` exists so the
service and CLI start warm on an unchanged tree; CI regenerates it with
``repro tune --regen`` and gates drift through the benchmark baseline
compare, not by trusting the file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .tuner import PLAN_SCHEMA_VERSION, TunePlan, TuneRequest

__all__ = ["DEFAULT_PLAN_DB", "PlanDB"]

#: where ``repro tune`` and the service look by default
DEFAULT_PLAN_DB = "benchmarks/plans/plan_db.json"


class PlanDB:
    """JSON-backed store of tuned plans, keyed by request, checked for staleness."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict] = {}
        self.load()

    def load(self) -> None:
        self.entries = {}
        if not self.path.exists():
            return
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # unreadable DB == empty DB; tuning rebuilds it
        if not isinstance(raw, dict) or raw.get("schema_version") != PLAN_SCHEMA_VERSION:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self.entries = {str(k): v for k, v in entries.items() if isinstance(v, dict)}

    def get(
        self, request: TuneRequest, code_version: str, space_hash: str
    ) -> TunePlan | None:
        """The stored plan for ``request``, or None when missing *or stale*."""
        entry = self.entries.get(request.key())
        if entry is None:
            return None
        if entry.get("code_version") != code_version:
            return None
        if entry.get("space_hash") != space_hash:
            return None
        try:
            return TunePlan.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, plan: TunePlan) -> None:
        request = TuneRequest(
            algo_class=plan.algo_class, n=plan.n, metric=plan.metric, seed=plan.seed
        )
        self.entries[request.key()] = plan.as_dict()

    def save(self) -> None:
        """Atomic write (tmp + rename) so readers never see a torn file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": PLAN_SCHEMA_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return len(self.entries)
